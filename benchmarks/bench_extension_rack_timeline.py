"""Extension experiment: a metered day on a live rack.

The flagship integration run: a six-server rack on the discrete-event
engine, VMs arriving and departing over a simulated day, the ZombieStack
orchestrator consolidating every 10 minutes (live migrations, Sz parking,
wake-on-demand), and a :class:`RackEnergyMonitor` metering every server
against the HP profile.  Compared with the identical arrival sequence on a
no-power-management rack — a Fig. 10 bar, but produced by the *mechanism*
simulation instead of the aggregate model.
"""

from conftest import print_table

from repro.cloud.zombiestack import ZombieStackOrchestrator
from repro.core.rack import Rack
from repro.energy.profiles import HP_PROFILE
from repro.energy.rack_monitor import RackEnergyMonitor
from repro.hypervisor.vm import VmSpec
from repro.sim.rng import DeterministicRng
from repro.units import HOUR, MiB

N_SERVERS = 8
DAY_S = 24 * HOUR


def _arrivals(rng):
    """(time, name, vcpus, mem, lifetime) — a diurnal arrival plan."""
    plan = []
    for i in range(32):
        t = rng.uniform(0, DAY_S * 0.7)
        plan.append((t, f"vm{i}", rng.choice([4, 4, 8, 8]),
                     rng.choice([16, 24, 32]) * MiB,
                     rng.uniform(1 * HOUR, 6 * HOUR)))
    return sorted(plan)


def _run_timeline(consolidate: bool):
    rack = Rack([f"s{i}" for i in range(N_SERVERS)],
                memory_bytes=256 * MiB, buff_size=8 * MiB)
    orch = ZombieStackOrchestrator(
        rack, vcpu_capacity=32, underload_vcpu_fraction=0.4,
        consolidation_period_s=600.0 if consolidate else None,
    )
    monitor = RackEnergyMonitor(rack, HP_PROFILE, sample_period_s=60.0)
    rng = DeterministicRng(17)
    stats = {"booted": 0, "failed": 0, "stopped": 0}

    def boot(name, vcpus, mem, lifetime):
        from repro.errors import ReproError
        try:
            orch.boot_vm(VmSpec(name, mem, vcpus=vcpus))
        except ReproError:
            stats["failed"] += 1
            return
        stats["booted"] += 1
        rack.engine.schedule(lifetime, lambda: stop(name))

    def stop(name):
        from repro.errors import ReproError
        try:
            orch.stop_vm(name)
            stats["stopped"] += 1
        except ReproError:
            pass

    for t, name, vcpus, mem, lifetime in _arrivals(rng):
        rack.engine.schedule_at(
            t, lambda n=name, v=vcpus, m=mem, l=lifetime: boot(n, v, m, l)
        )
    rack.engine.run(until=DAY_S)
    monitor.stop()
    zombies = len(rack.zombie_servers())
    return monitor.total_kwh(), stats, zombies, rack


def test_metered_day_on_a_live_rack(benchmark):
    def run():
        managed_kwh, managed_stats, zombies, rack = _run_timeline(True)
        baseline_kwh, baseline_stats, _, _ = _run_timeline(False)
        return (managed_kwh, baseline_kwh, managed_stats, baseline_stats,
                zombies, rack.events.counts())

    (managed, baseline, m_stats, b_stats, zombies,
     events) = benchmark.pedantic(run, rounds=1, iterations=1)

    saving = (1 - managed / baseline) * 100
    print_table(
        "Extension — a metered day (8 servers, HP profile)",
        ["configuration", "energy (kWh)", "booted", "failed"],
        [["no management", f"{baseline:.3f}".rjust(12),
          str(b_stats['booted']).rjust(12), str(b_stats['failed']).rjust(12)],
         ["ZombieStack", f"{managed:.3f}".rjust(12),
          str(m_stats['booted']).rjust(12), str(m_stats['failed']).rjust(12)]],
    )
    print(f"energy saving: {saving:.1f}%   "
          f"zombies at end of day: {zombies}")
    print(f"audit: {events}")

    # The orchestrator serves the same workload...
    assert m_stats["booted"] == b_stats["booted"]
    assert m_stats["failed"] == b_stats["failed"] == 0
    # ...for meaningfully less energy, with real migrations and Sz parking.
    assert saving > 20.0
    assert events.get("zombie-enter", 0) >= 1
    assert events.get("vm-migrated", 0) >= 1
