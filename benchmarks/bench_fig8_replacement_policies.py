"""Figure 8: FIFO vs Clock vs Mixed for RAM Ext.

Three subplots over the %-local-memory sweep: (top) micro-benchmark
execution time, (middle) page-fault count, (bottom) per-fault policy cost
in CPU cycles.  Expected shape: Mixed has the best execution time
(outperforming FIFO and Clock by tens of percent in the thrashing region),
Clock has the fewest faults but by far the highest per-fault cost, FIFO is
the cheapest per fault but evicts soon-to-be-reused pages.
"""

from conftest import print_table

from repro.analysis.experiments import (LOCAL_FRACTIONS,
                                        replacement_policy_comparison)

POLICIES = ("FIFO", "Clock", "Mixed")


def test_fig8_policy_comparison(benchmark):
    data = benchmark.pedantic(replacement_policy_comparison,
                              rounds=1, iterations=1)

    for metric, label in (("exec_s", "execution time (s)"),
                          ("faults", "# page faults"),
                          ("cycles_per_fault", "policy cycles / fault")):
        rows = []
        for policy in POLICIES:
            rows.append([policy] + [
                f"{data[policy][f][metric]:.4g}".rjust(12)
                for f in LOCAL_FRACTIONS
            ])
        print_table(f"Fig. 8 — {label}",
                    ["policy"] + [f"{f * 100:.0f}%" for f in LOCAL_FRACTIONS],
                    rows)

    # Top: Mixed is the best policy in the thrashing region (paper: beats
    # FIFO by up to 30 % and Clock by up to 36 %).
    best_gain_vs_fifo = max(
        1 - data["Mixed"][f]["exec_s"] / data["FIFO"][f]["exec_s"]
        for f in LOCAL_FRACTIONS
    )
    best_gain_vs_clock = max(
        1 - data["Mixed"][f]["exec_s"] / data["Clock"][f]["exec_s"]
        for f in LOCAL_FRACTIONS
    )
    print(f"\nMixed vs FIFO: up to {best_gain_vs_fifo:.0%} faster "
          f"(paper: up to 30%)")
    print(f"Mixed vs Clock: up to {best_gain_vs_clock:.0%} faster "
          f"(paper: up to 36%)")
    assert best_gain_vs_fifo > 0.15
    assert best_gain_vs_clock > 0.10

    # Middle: in the pressured region Clock/Mixed fault less than FIFO.
    assert data["Clock"][0.4]["faults"] < data["FIFO"][0.4]["faults"]
    assert data["Mixed"][0.4]["faults"] < data["FIFO"][0.4]["faults"]

    # Bottom: FIFO cheapest per fault, Clock the most expensive (the gaps
    # the paper points at), Mixed close to FIFO.
    for f in LOCAL_FRACTIONS:
        assert (data["FIFO"][f]["cycles_per_fault"]
                < data["Mixed"][f]["cycles_per_fault"]
                < data["Clock"][f]["cycles_per_fault"])

    # Execution time decreases as more memory is local, for every policy.
    for policy in POLICIES:
        assert (data[policy][0.2]["exec_s"]
                > data[policy][0.8]["exec_s"])
