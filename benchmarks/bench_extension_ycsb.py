"""Extension experiment: YCSB core workloads under RAM Ext.

Not in the paper (which cites YCSB [41] but evaluates three other macro
benchmarks) — this extends Table 1 with the six standard key-value
workloads.  Expected shape: the zipfian point workloads (A/B/C/F) tolerate
remote memory like Data Caching does; the scan workload (E) behaves like
Spark SQL (most sensitive); read-latest (D) sits in between because its
hotspot moves.
"""

from conftest import print_table

from repro.analysis.harness import RamExtHarness
from repro.workloads.ycsb import YCSB_WORKLOADS

FRACTIONS = (0.2, 0.4, 0.5, 0.6, 0.8)
PAGES = 1536


def _sweep():
    table = {}
    for letter in "ABCDEF":
        workload = YCSB_WORKLOADS[letter](total_pages=PAGES)
        baseline = RamExtHarness(PAGES, 1.0).run(workload.stream(),
                                                 workload.compute_s)
        row = {}
        for fraction in FRACTIONS:
            harness = RamExtHarness(PAGES, fraction)
            result = harness.run(workload.stream(), workload.compute_s)
            row[fraction] = result.penalty_vs(baseline) * 100.0
        table[letter] = row
    return table


def test_ycsb_ram_ext_penalty(benchmark):
    table = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = [[f"YCSB-{letter}"] + [table[letter][f] for f in FRACTIONS]
            for letter in "ABCDEF"]
    print_table("Extension — YCSB penalty (%) under RAM Ext",
                ["workload"] + [f"{f * 100:.0f}%" for f in FRACTIONS], rows)

    for letter, row in table.items():
        # Weak monotonicity: more local memory never hurts much.
        values = [row[f] for f in FRACTIONS]
        assert all(a >= b - 5.0 for a, b in zip(values, values[1:])), letter
        # At 80 % local every workload is close to native.
        assert row[0.8] < 25.0, letter

    # The scan workload is the most remote-sensitive at 20 % local,
    # mirroring Spark SQL's position in Table 1.
    worst = max(table, key=lambda k: table[k][0.2])
    assert worst == "E"
    # Zipfian point lookups tolerate remote memory best.
    assert min(table[k][0.2] for k in "ABCF") < table["E"][0.2]
