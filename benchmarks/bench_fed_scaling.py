"""Federation scaling: throughput and cross-rack borrow rate vs rack count.

One fixed allocation storm — a single tenant draining its home rack far
past one rack's zombie pool — replayed against federations of 1, 2 and
4 racks.  With one rack the storm hits the wall (no donors, the dry
allocation surfaces); with two the home rack borrows from its peer;
with four the borrows spread across three donors and more of the storm
is served.  All reported values are *simulated* units derived from the
MetricsRegistry, so the checked-in baseline is machine-independent.
"""

import json
import os
from pathlib import Path

from conftest import print_table

from repro.errors import AllocationError
from repro.fed import Federation
from repro.obs import Telemetry
from repro.units import MiB

RACK_COUNTS = (1, 2, 4)
#: 40 rounds x 4 buffers = 160 buffers demanded — roughly 1.7x one
#: rack's total capacity (2 zombie hosts + intra-rack growth), so the
#: storm provably crosses into cross-rack lending when donors exist.
STORM_ROUNDS = 40
BUFFERS_PER_ROUND = 4
BUFF_SIZE = 16 * MiB


def _sum_family(snapshot, family):
    return sum(value for key, value in snapshot.items()
               if key.split("{", 1)[0] == family)


def _run_storm(n_racks):
    """Drive the fixed storm; returns registry-derived simulated values."""
    tel = Telemetry(enabled=True)
    fed = Federation(n_racks=n_racks, hosts_per_rack=3,
                     memory_bytes=512 * MiB, buff_size=BUFF_SIZE,
                     rng_seed=0, telemetry=tel)
    for rack in fed.rack_names:
        fed.make_zombie(f"{rack}/h2")
        fed.make_zombie(f"{rack}/h3")
    tenant = "rack1/h1"
    granted = 0
    dry = 0
    for _ in range(STORM_ROUNDS):
        try:
            descs = fed.gateway.alloc_ext(
                tenant, BUFFERS_PER_ROUND * BUFF_SIZE)
        except AllocationError:
            dry += 1
            break
        granted += len(descs)
    snapshot = tel.registry.snapshot()
    # Simulated time spent inside RPCs (the cost model accrues into the
    # call histogram; the engine clock only moves under engine.run).
    sim_seconds = _sum_family(snapshot, "rpc_call_seconds_sum")
    served = _sum_family(snapshot, "rpc_served_total")
    borrows = _sum_family(snapshot, "fed_borrows_total")
    return {
        "buffers_granted": float(granted),
        "dry_failures": float(dry),
        "verbs_served": served,
        "sim_seconds": sim_seconds,
        "throughput_verbs_per_s": served / sim_seconds,
        "cross_rack_borrows": borrows,
        "borrow_rate_per_s": borrows / sim_seconds,
        "cross_rack_joules": fed.fabric.cross_rack_joules,
        "lending_triggers": float(fed.gateway.lending_triggers),
    }


def _fed_scaling_snapshot():
    return {f"racks={n}/{metric}": value
            for n in RACK_COUNTS
            for metric, value in _run_storm(n).items()}


def test_fed_scaling(benchmark):
    data = benchmark.pedantic(
        lambda: {n: _run_storm(n) for n in RACK_COUNTS},
        rounds=1, iterations=1)

    metrics = ("buffers_granted", "throughput_verbs_per_s",
               "cross_rack_borrows", "borrow_rate_per_s",
               "cross_rack_joules")
    rows = [[f"racks={n}"] + [f"{data[n][m]:.4g}" for m in metrics]
            for n in RACK_COUNTS]
    print_table("Federation scaling — fixed allocation storm",
                ["federation"] + list(metrics), rows)

    # One rack has no donors: the storm goes dry with zero borrows and
    # zero inter-rack energy.
    assert data[1]["cross_rack_borrows"] == 0
    assert data[1]["cross_rack_joules"] == 0
    assert data[1]["dry_failures"] == 1
    # With donors the storm is absorbed by cross-rack lending.
    for n in (2, 4):
        assert data[n]["cross_rack_borrows"] > 0
        assert data[n]["cross_rack_joules"] > 0
        assert data[n]["buffers_granted"] > data[1]["buffers_granted"]
    # More racks, more spare zombie pool: granted capacity is monotone
    # in rack count, and the cross-rack traffic is real work, not noise.
    assert (data[4]["buffers_granted"] >= data[2]["buffers_granted"])
    for n in RACK_COUNTS:
        assert data[n]["throughput_verbs_per_s"] > 0


# -- checked-in baseline -----------------------------------------------------
#
# The storm is deterministic in simulated units (fixed seed, fixed
# demand), so its registry-derived throughput and borrow rate are pinned
# the same way BENCH_micro_ops.json pins the micro-op costs.  Refresh
# after an intentional change with:
#   BENCH_REGEN=1 pytest benchmarks/bench_fed_scaling.py

BASELINE_PATH = Path(__file__).with_name("BENCH_fed_scaling.json")
#: Generous: real scaling regressions worth catching are way past 25 %.
BASELINE_TOLERANCE = 0.25


def test_fed_scaling_matches_checked_in_baseline():
    current = _fed_scaling_snapshot()
    if os.environ.get("BENCH_REGEN"):
        BASELINE_PATH.write_text(json.dumps(current, indent=2,
                                            sort_keys=True) + "\n")
    baseline = json.loads(BASELINE_PATH.read_text())
    missing = sorted(set(baseline) - set(current))
    assert not missing, f"baseline metrics no longer emitted: {missing}"
    appeared = sorted(set(current) - set(baseline))
    assert not appeared, (
        f"new metrics not in the baseline (BENCH_REGEN=1 to accept): "
        f"{appeared}")
    off = {key: (want, current[key]) for key, want in baseline.items()
           if abs(current[key] - want) >
           BASELINE_TOLERANCE * max(abs(want), 1e-12)}
    assert not off, f"federation scaling drifted past ±25%: {off}"
