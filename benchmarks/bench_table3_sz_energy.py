"""Table 3: measured power per machine/configuration plus the Sz estimate.

The seven measured configurations are carried verbatim from the paper; the
``Sz`` column must come out of equation (1):

    E(Sz) = (E(S0WIBOn) - E(S0WIBOff)) + (E(S3WIB) - E(S3WOIB)) + E(S3WOIB)

giving 12.67 % (HP) and 11.15 % (Dell) of each machine's maximum power.
"""

import pytest
from conftest import print_table

from repro.analysis.experiments import sz_energy_table

COLUMNS = ["S0WOIB", "S0WIBOff", "S0WIBOn", "S3WOIB", "S3WIB",
           "S4WOIB", "S4WIB", "Sz"]
PAPER = {
    "HP": [46.16, 52.20, 53.84, 4.23, 11.03, 0.19, 6.81, 12.67],
    "Dell": [35.35, 42.33, 44.77, 1.97, 8.71, 1.12, 8.31, 11.15],
}


def test_table3_sz_energy_estimate(benchmark):
    table = benchmark.pedantic(sz_energy_table, rounds=1, iterations=1)

    rows = [[machine] + [table[machine][c] for c in COLUMNS]
            for machine in ("HP", "Dell")]
    print_table("Table 3 — % of machine max power", ["machine"] + COLUMNS,
                rows)

    for machine, expected in PAPER.items():
        for column, value in zip(COLUMNS, expected):
            assert table[machine][column] == pytest.approx(value, abs=0.01), (
                f"{machine}/{column}"
            )

    # Sz sits between S3 (with IB) and S0 idle for both machines: the
    # zombie state costs a little more than suspend, far less than idle.
    for machine in ("HP", "Dell"):
        row = table[machine]
        assert row["S3WIB"] < row["Sz"] < row["S0WIBOff"]
