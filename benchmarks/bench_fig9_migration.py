"""Figure 9: live-migration time vs. working-set size.

Native pre-copy transfers the whole VM over a fixed number of rounds, so
its duration barely moves with the WSS.  ZombieStack stops the VM and
copies only the local (hot) half of the WSS — remote memory just changes
ownership — so it grows with WSS and stays below native, with the biggest
win at small working sets.
"""

from conftest import print_table

from repro.analysis.experiments import migration_comparison

RATIOS = (0.2, 0.4, 0.6, 0.8)


def test_fig9_migration_time(benchmark):
    rows = benchmark.pedantic(
        lambda: migration_comparison(wss_ratios=RATIOS),
        rounds=1, iterations=1,
    )
    print_table(
        "Fig. 9 — migration time (s), 8 GiB VM",
        ["WSS ratio", "native", "ZombieStack"],
        [[f"{r['wss_ratio'] * 100:.0f}%",
          f"{r['native_s']:.2f}".rjust(12),
          f"{r['zombiestack_s']:.2f}".rjust(12)] for r in rows],
    )

    natives = [r["native_s"] for r in rows]
    zombies = [r["zombiestack_s"] for r in rows]

    # ZombieStack wins at every WSS, most at the smallest.
    for native, zombie in zip(natives, zombies):
        assert zombie < native
    win = [n / z for n, z in zip(natives, zombies)]
    assert win[0] == max(win)

    # Native is almost flat; ZombieStack grows with the WSS.
    assert max(natives) < 1.3 * min(natives)
    assert zombies == sorted(zombies)
    assert zombies[-1] > 2 * zombies[0]

    # Remote pages never move.
    assert all(r["zombiestack_pages"] < r["native_pages"] for r in rows)
