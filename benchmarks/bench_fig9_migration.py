"""Figure 9: live-migration time vs. working-set size.

Native pre-copy transfers the whole VM over a fixed number of rounds, so
its duration barely moves with the WSS.  ZombieStack stops the VM and
copies only the local (hot) half of the WSS — remote memory just changes
ownership — so it grows with WSS and stays below native, with the biggest
win at small working sets.

The experiment records every modelled migration into a ZomTrace metrics
registry, and the shape assertions below read the registry — the BENCH
numbers come from *measured* series, not from values the experiment chose
to return.
"""

import pytest

from conftest import print_table

from repro.analysis.experiments import migration_comparison
from repro.obs.metrics import MetricsRegistry

RATIOS = (0.2, 0.4, 0.6, 0.8)


def test_fig9_migration_time(benchmark):
    registry = MetricsRegistry()
    rows = benchmark.pedantic(
        lambda: migration_comparison(wss_ratios=RATIOS, metrics=registry),
        rounds=1, iterations=1,
    )
    print_table(
        "Fig. 9 — migration time (s), 8 GiB VM",
        ["WSS ratio", "native", "ZombieStack"],
        [[f"{r['wss_ratio'] * 100:.0f}%",
          f"{r['native_s']:.2f}".rjust(12),
          f"{r['zombiestack_s']:.2f}".rjust(12)] for r in rows],
    )

    natives = [r["native_s"] for r in rows]
    zombies = [r["zombiestack_s"] for r in rows]

    # ZombieStack wins at every WSS, most at the smallest.
    for native, zombie in zip(natives, zombies):
        assert zombie < native
    win = [n / z for n, z in zip(natives, zombies)]
    assert win[0] == max(win)

    # Native is almost flat; ZombieStack grows with the WSS.
    assert max(natives) < 1.3 * min(natives)
    assert zombies == sorted(zombies)
    assert zombies[-1] > 2 * zombies[0]

    # The registry saw one migration per protocol per ratio, and its
    # histograms agree with the returned rows.
    native_hist = registry.get("migration_seconds", protocol="native")
    zombie_hist = registry.get("migration_seconds", protocol="zombiestack")
    assert native_hist.count == len(RATIOS)
    assert zombie_hist.count == len(RATIOS)
    assert native_hist.sum == pytest.approx(sum(natives))
    assert zombie_hist.sum == pytest.approx(sum(zombies))
    assert zombie_hist.max < native_hist.min  # wins at every WSS

    # Remote pages never move: measured page counts, per protocol.
    native_pages = registry.get("migration_pages", protocol="native")
    zombie_pages = registry.get("migration_pages", protocol="zombiestack")
    assert zombie_pages.max < native_pages.min
    assert native_pages.sum == sum(r["native_pages"] for r in rows)
    assert zombie_pages.sum == sum(r["zombiestack_pages"] for r in rows)
