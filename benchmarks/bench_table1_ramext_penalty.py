"""Table 1: RAM Ext performance penalty vs. % of memory local.

Paper row shapes: the micro-benchmark (worst case) explodes below 50 %
local (9000 %/4000 %) but stays <= ~8 % at 50 %; the three macro-benchmarks
remain mild everywhere (<= ~27 % even at 20 % local) and near zero at 80 %.
50 % local is the paper's chosen compromise.
"""

import math

from conftest import print_table

from repro.analysis.experiments import (LOCAL_FRACTIONS,
                                        ram_ext_penalty_table)

PAPER = {
    "micro-bench.": {0.2: 9000, 0.4: 4000, 0.5: 8, 0.6: 2.1, 0.8: 0.04},
    "Elastic search": {0.2: 15.6, 0.4: 6, 0.5: 4.2, 0.6: 3.01, 0.8: 0.01},
    "Data caching": {0.2: 9.6, 0.4: 3.16, 0.5: 1.35, 0.6: 0.35, 0.8: 0.32},
    "Spark SQL": {0.2: 27, 0.4: 6.5, 0.5: 5.34, 0.6: 2.04, 0.8: 0.2},
}


def test_table1_ram_ext_penalty(benchmark):
    table = benchmark.pedantic(ram_ext_penalty_table, rounds=1, iterations=1)

    header = ["% local"] + [f"{f * 100:.0f}%" for f in LOCAL_FRACTIONS]
    rows = [[name] + [table[name][f] for f in LOCAL_FRACTIONS]
            for name in table]
    print_table("Table 1 — RAM Ext penalty (measured)", header, rows)
    rows_paper = [[name] + [PAPER[name][f] for f in LOCAL_FRACTIONS]
                  for name in PAPER]
    print_table("Table 1 — paper values", header, rows_paper)

    micro = table["micro-bench."]
    # The worst-case cliff sits between 40 % and 50 % local.
    assert micro[0.4] > 100.0, "no thrashing at 40% local"
    assert micro[0.5] < 50.0, "50% local should be acceptable"
    assert micro[0.2] > micro[0.5]

    # 50 % local is an acceptable compromise for every workload
    # (paper: "less than 8%"; we allow headroom for simulator noise).
    for name, row in table.items():
        assert row[0.5] < 50.0, f"{name} too slow at 50% local"

    # Macro-benchmarks stay mild even at 20 % local.
    for name in ("Elastic search", "Data caching", "Spark SQL"):
        assert table[name][0.2] < 100.0

    # Penalty decreases (weakly) as local memory grows.
    for name, row in table.items():
        values = [row[f] for f in LOCAL_FRACTIONS]
        finite = [v for v in values if not math.isinf(v)]
        assert all(a >= b - 2.0 for a, b in zip(finite, finite[1:]))
