"""Figure 3: normalized server memory:CPU capacity ratio, 2005-2013.

Supply-side motivation: memory capacity per core drops ~30 % every two
years as core counts outgrow DIMM density.
"""

from conftest import print_table

from repro.analysis.figures import server_capacity_ratio


def test_fig3_server_capacity_ratio(benchmark):
    series = benchmark.pedantic(
        lambda: server_capacity_ratio(2005, 2013), rounds=1, iterations=1
    )
    print_table("Fig. 3 — normalized memory:CPU capacity ratio",
                ["year", "ratio"],
                [(str(year), ratio) for year, ratio in series])

    values = dict(series)
    assert values[2005] == 1.0
    for year in range(2005, 2012):
        # -30 % every two years.
        assert abs(values[year + 2] / values[year] - 0.7) < 0.001
    assert values[2013] < 0.3
