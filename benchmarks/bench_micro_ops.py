"""Micro-operation benchmarks: the primitive costs under every experiment.

Unlike the table/figure benches (one-shot experiment reproductions), these
use pytest-benchmark's statistics properly: many rounds of the hot
primitives — one-sided verbs, RPC round trips, the fault path, victim
selection, controller allocation — so regressions in the simulator's own
performance are visible.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.rack import Rack
from repro.hypervisor.vm import VmSpec
from repro.memory.frames import Frame, FrameAllocator
from repro.memory.page_table import PageTable
from repro.memory.replacement import make_policy
from repro.obs import Telemetry
from repro.rdma.fabric import Fabric
from repro.units import MiB, PAGE_SIZE


@pytest.fixture(scope="module")
def verb_env():
    fabric = Fabric()
    a = fabric.add_node("a")
    b = fabric.add_node("b")
    mr = b.register_mr(64 * MiB)
    qp = a.connect_qp("b")
    payload = bytes(range(256)) * 16  # 4 KiB, non-zero
    return a, mr, qp, payload


def test_one_sided_write_4k(benchmark, verb_env):
    a, mr, qp, payload = verb_env
    benchmark(a.rdma_write, qp, mr.rkey, 0, payload)


def test_one_sided_read_4k(benchmark, verb_env):
    a, mr, qp, payload = verb_env
    a.rdma_write(qp, mr.rkey, 0, payload)
    result = benchmark(a.rdma_read, qp, mr.rkey, 0, PAGE_SIZE)
    assert result[:16] == payload[:16]


def test_rpc_round_trip(benchmark):
    from repro.rdma.rpc import RpcClient, RpcServer
    fabric = Fabric()
    server = RpcServer(fabric.add_node("srv"))
    server.register("echo", lambda x: x)
    client = RpcClient(fabric.add_node("cli"), server)
    assert benchmark(client.call, "echo", 42) == 42


def test_rpc_round_trip_traced(benchmark):
    """The instrumented round trip — and the registry must agree with the
    client's own counters, so BENCH numbers are measured, not reported."""
    from repro.rdma.rpc import RpcClient, RpcServer
    tel = Telemetry(enabled=True)
    fabric = Fabric(telemetry=tel)
    server = RpcServer(fabric.add_node("srv"))
    server.register("echo", server.traced("echo", lambda x: x))
    client = RpcClient(fabric.add_node("cli"), server)
    assert benchmark(client.call, "echo", 42) == 42

    assert tel.registry.value("rpc_calls_total", verb="echo") \
        == client.calls_made
    assert tel.registry.value("rpc_call_seconds", verb="echo") \
        == client.calls_made
    assert tel.registry.value("rpc_served_total", verb="echo",
                              node="srv") == server.calls_served
    # call + attempt + serve per round trip, modulo the ring bound.
    tracer = tel.tracer
    assert len(tracer.finished()) + tracer.dropped == 3 * client.calls_made


def test_disabled_telemetry_rpc_overhead():
    """A disabled hub must cost nothing measurable on the RPC hot path.

    ``client.call`` with disabled telemetry is the uninstrumented retry
    loop plus one ``enabled`` check; compare it against invoking that
    loop directly and require the wrapper to stay within noise.
    """
    from repro.rdma.rpc import RpcClient, RpcServer
    fabric = Fabric()  # default hub: disabled
    server = RpcServer(fabric.add_node("srv"))
    server.register("echo", server.traced("echo", lambda x: x))
    client = RpcClient(fabric.add_node("cli"), server)
    assert not fabric.telemetry.enabled

    def timed(fn, loops=2000):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        return time.perf_counter() - start

    run_bare = lambda: client._call_with_retries("echo", (42,), {})
    run_wrapped = lambda: client.call("echo", 42)
    timed(run_wrapped, loops=500)  # warm up
    timed(run_bare, loops=500)
    # Interleave the measurements so CPU-frequency/load drift hits both
    # targets equally; minima are robust against one-off stalls.
    bare = wrapped = float("inf")
    for _ in range(9):
        bare = min(bare, timed(run_bare))
        wrapped = min(wrapped, timed(run_wrapped))
    assert wrapped < bare * 1.5, (
        f"disabled telemetry added {wrapped / bare - 1:.0%} to the RPC "
        "round trip"
    )
    # And it must have recorded nothing while doing so.
    assert fabric.telemetry.registry.families() == []
    assert fabric.telemetry.tracer.finished() == []


@pytest.fixture(scope="module")
def fault_env():
    rack = Rack(["user", "zombie"], memory_bytes=256 * MiB,
                buff_size=8 * MiB)
    rack.make_zombie("zombie")
    vm = rack.create_vm("user", VmSpec("vm", 64 * MiB), local_fraction=0.5)
    hv = rack.server("user").hypervisor
    for ppn in range(vm.spec.total_pages):
        hv.access(vm, ppn)
    return hv, vm


def test_resident_access_fast_path(benchmark, fault_env):
    hv, vm = fault_env
    resident = next(e.ppn for e in vm.table.resident())
    benchmark(hv.access, vm, resident)


def test_fault_path_with_eviction(benchmark, fault_env):
    """The full miss path: policy + demotion write + remote fill read."""
    hv, vm = fault_env
    pages = vm.spec.total_pages

    def one_fault(state=[0]):
        # Walk pseudo-physical pages; roughly half are remote at any time.
        for _ in range(pages):
            state[0] = (state[0] + 1) % pages
            entry = vm.table.entry(state[0])
            if not entry.present:
                return hv.access(vm, state[0])
        return 0.0

    cost = benchmark(one_fault)
    assert cost > 0


def test_fault_path_traced(benchmark):
    """The instrumented miss path; fault counts are read back from the
    ZomTrace registry and must match the hypervisor's own accounting."""
    tel = Telemetry(enabled=True)
    rack = Rack(["user", "zombie"], memory_bytes=256 * MiB,
                buff_size=8 * MiB, telemetry=tel)
    rack.make_zombie("zombie")
    vm = rack.create_vm("user", VmSpec("vm", 64 * MiB), local_fraction=0.5)
    hv = rack.server("user").hypervisor
    for ppn in range(vm.spec.total_pages):
        hv.access(vm, ppn)
    pages = vm.spec.total_pages

    def one_fault(state=[0]):
        for _ in range(pages):
            state[0] = (state[0] + 1) % pages
            entry = vm.table.entry(state[0])
            if not entry.present:
                return hv.access(vm, state[0])
        return 0.0

    cost = benchmark(one_fault)
    assert cost > 0
    stats = hv.stats("vm")
    assert tel.registry.value("hv_page_faults_total",
                              host="user") == stats.page_faults
    assert tel.registry.value("hv_fault_seconds",
                              host="user") == stats.page_faults
    evicted = sum(tel.registry.value("hv_evictions_total", **labels)
                  for labels
                  in tel.registry.labels_for("hv_evictions_total"))
    assert evicted == stats.evictions > 0


@pytest.mark.parametrize("policy_name", ["FIFO", "Clock", "Mixed"])
def test_victim_selection(benchmark, policy_name):
    policy = make_policy(policy_name)
    table = PageTable(4096)
    for ppn in range(2048):
        table.map_local(ppn, Frame(ppn))
        policy.note_resident(ppn)
    table.clear_accessed_bits()
    table.clear_accessed_bits()

    def select_and_replace(state=[2048]):
        victim = policy.select_victim(table)
        table.demote(victim, remote_slot=victim)
        table.map_local(victim, Frame(victim))
        policy.note_resident(victim)
        return victim

    benchmark(select_and_replace)


def test_controller_alloc_release(benchmark):
    rack = Rack(["user", "zombie"], memory_bytes=256 * MiB,
                buff_size=8 * MiB)
    rack.make_zombie("zombie")
    manager = rack.server("user").manager

    def alloc_release():
        store = manager.request_ext(16 * MiB)
        manager.release_store(store)

    benchmark(alloc_release)


def test_frame_allocator_churn(benchmark):
    allocator = FrameAllocator(65536)

    def churn():
        frames = allocator.alloc_many(1024)
        allocator.free_many(frames)

    benchmark(churn)


# -- checked-in baseline -----------------------------------------------------
#
# Wall-clock numbers drift with the machine; the *simulated* costs and
# operation counts of a fixed scripted scenario do not.  The baseline
# below pins those MetricsRegistry values so a change that silently makes
# the hot paths chattier (more RPCs, more faults) or slower in simulated
# time fails here, machine-independently.  Refresh after an intentional
# change with:  BENCH_REGEN=1 pytest benchmarks/bench_micro_ops.py

BASELINE_PATH = Path(__file__).with_name("BENCH_micro_ops.json")
#: Generous: real regressions worth catching are way past 25 %.
BASELINE_TOLERANCE = 0.25
_BASELINE_FAMILIES = ("rpc_calls_total", "rpc_served_total",
                      "rpc_call_seconds_count", "rpc_call_seconds_sum",
                      "hv_page_faults_total", "hv_evictions_total",
                      "hv_fault_seconds_count", "hv_fault_seconds_sum")


def _micro_ops_snapshot():
    """Metric values of one fixed micro-op scenario (simulated units)."""
    tel = Telemetry(enabled=True)
    rack = Rack(["user", "zombie"], memory_bytes=256 * MiB,
                buff_size=8 * MiB, rng_seed=0, telemetry=tel)
    rack.make_zombie("zombie")
    vm = rack.create_vm("user", VmSpec("vm", 64 * MiB), local_fraction=0.5)
    hv = rack.server("user").hypervisor
    for _ in range(2):
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn)
    manager = rack.server("user").manager
    store = manager.request_ext(16 * MiB)
    manager.release_store(store)
    manager.request_swap(8 * MiB)
    rack.wake("zombie", reclaim_bytes=256 * MiB)
    rack.destroy_vm("user", "vm")
    return {key: value for key, value in tel.registry.snapshot().items()
            if key.split("{", 1)[0] in _BASELINE_FAMILIES}


def test_micro_ops_match_checked_in_baseline():
    current = _micro_ops_snapshot()
    if os.environ.get("BENCH_REGEN"):
        BASELINE_PATH.write_text(json.dumps(current, indent=2,
                                            sort_keys=True) + "\n")
    baseline = json.loads(BASELINE_PATH.read_text())
    missing = sorted(set(baseline) - set(current))
    assert not missing, f"baseline metrics no longer emitted: {missing}"
    appeared = sorted(set(current) - set(baseline))
    assert not appeared, (
        f"new metrics not in the baseline (BENCH_REGEN=1 to accept): "
        f"{appeared}")
    off = {key: (want, current[key]) for key, want in baseline.items()
           if abs(current[key] - want) >
           BASELINE_TOLERANCE * max(abs(want), 1e-12)}
    assert not off, f"micro-op costs drifted past ±25%: {off}"
