"""Figure 10: datacenter energy saving — Neat vs Oasis vs ZombieStack.

Synthetic Google-format traces (original, and the "modified" set where
memory demand is twice the CPU demand) over both machine profiles.  Paper
bars: original 36/40/54 (HP) and 36/40/56 (Dell); modified 36/42/65 and
36/42/67 — ZombieStack beats Neat by ~86 % relative on the modified set.

Known deviation (see EXPERIMENTS.md): our baseline is independent of
memory pressure, so Neat/Oasis *decline* on the modified traces instead of
staying flat; ZombieStack's relative advantage still widens as in the
paper.
"""

from conftest import print_table

from repro.analysis.experiments import dc_energy_comparison

POLICIES = ("Neat", "Oasis", "ZombieStack")
PAPER = {
    "original": {"HP": (36, 40, 54), "Dell": (36, 40, 56)},
    "modified": {"HP": (36, 42, 65), "Dell": (36, 42, 67)},
}


def test_fig10_dc_energy_saving(benchmark):
    data = benchmark.pedantic(
        lambda: dc_energy_comparison(n_servers=1000, duration_days=7.0),
        rounds=1, iterations=1,
    )

    for trace_set, per_machine in data.items():
        rows = []
        for machine, row in per_machine.items():
            rows.append([machine] + [f"{row[p]:.1f}%".rjust(12)
                                     for p in POLICIES])
            paper = PAPER[trace_set][machine]
            rows.append([f"  (paper)"] + [f"{v}%".rjust(12) for v in paper])
        print_table(f"Fig. 10 — % energy saving ({trace_set} traces)",
                    ["machine"] + list(POLICIES), rows)

    for trace_set, per_machine in data.items():
        for machine, row in per_machine.items():
            # Ordering: ZombieStack > Oasis >= Neat, all positive.
            assert row["ZombieStack"] > row["Oasis"] >= row["Neat"] > 0
            # Magnitudes in the paper's neighbourhood.
            assert 15 < row["Neat"] < 60
            assert 35 < row["ZombieStack"] < 75

    # The relative ZombieStack advantage widens on the modified traces
    # (paper: ~50 % better than Neat originally, ~86 % better modified).
    for machine in ("HP", "Dell"):
        orig = data["original"][machine]
        mod = data["modified"][machine]
        rel_orig = orig["ZombieStack"] / orig["Neat"]
        rel_mod = mod["ZombieStack"] / mod["Neat"]
        print(f"{machine}: ZombieStack/Neat original {rel_orig:.2f}x, "
              f"modified {rel_mod:.2f}x (paper: 1.5x -> 1.86x)")
        assert rel_mod > rel_orig
        assert rel_mod > 1.5
