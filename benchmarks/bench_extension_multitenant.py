"""Extension experiment: multiple tenants sharing one zombie pool.

The paper evaluates one VM per user server; this extension runs several
RAM-Ext VMs concurrently against the same zombie, checking that (a) the
rack pool is shared fairly (striping), (b) per-VM penalty stays in the
single-tenant ballpark — remote memory bandwidth is modelled per-op, so
tenants do not corrupt each other's paging state — and (c) aggregate rack
accounting balances.
"""

from conftest import print_table

from repro.core.rack import Rack
from repro.hypervisor.vm import VmSpec
from repro.units import MiB, PAGE_SIZE
from repro.workloads.macro import DataCaching
from repro.workloads.driver import run_stream

TENANTS = 4
VM_PAGES = 4096


def _run():
    rack = Rack([f"user{i}" for i in range(TENANTS)] + ["z1", "z2"],
                memory_bytes=128 * MiB, buff_size=4 * MiB)
    rack.make_zombie("z1")
    rack.make_zombie("z2")

    workload = DataCaching(wss_pages=VM_PAGES)

    # Baseline: one fully-local VM.
    base_rack = Rack(["solo"], memory_bytes=128 * MiB, buff_size=4 * MiB)
    base_vm = base_rack.create_vm("solo", VmSpec("base",
                                                 VM_PAGES * PAGE_SIZE),
                                  local_fraction=1.0)
    base_hv = base_rack.server("solo").hypervisor
    baseline = run_stream(workload.stream(),
                          lambda p, w: base_hv.access(base_vm, p, w),
                          workload.compute_s)

    rows = []
    for i in range(TENANTS):
        host = f"user{i}"
        vm = rack.create_vm(host, VmSpec(f"vm{i}", VM_PAGES * PAGE_SIZE),
                            local_fraction=0.5)
        hv = rack.server(host).hypervisor
        result = run_stream(workload.stream(),
                            lambda p, w, hv=hv, vm=vm: hv.access(vm, p, w),
                            workload.compute_s)
        penalty = result.penalty_vs(baseline) * 100
        store = hv.store_for(f"vm{i}")
        hosts = sorted({lease.host for lease in store.leases()})
        rows.append((f"vm{i}", penalty, len(store.lease_ids()), hosts))
    summary = rack.pool_summary()
    return rows, summary


def test_multitenant_zombie_pool(benchmark):
    rows, summary = benchmark.pedantic(_run, rounds=1, iterations=1)

    print_table("Extension — 4 tenants sharing two zombies",
                ["tenant", "penalty", "leases", "serving hosts"],
                [[name, f"{p:.2f}%".rjust(12), str(l).rjust(12),
                  ",".join(h).rjust(12)] for name, p, l, h in rows])
    print(f"pool: {summary}")

    penalties = [p for _, p, _, _ in rows]
    # Every tenant's penalty is in the single-tenant ballpark (Table 1's
    # Data caching @50% is ~0-2%); nobody is starved.
    assert all(p < 20.0 for p in penalties)
    # Fairness: the spread across tenants stays small.
    assert max(penalties) - min(penalties) < 10.0
    # Striping put every tenant's memory on both zombies.
    for _, _, _, hosts in rows:
        assert hosts == ["z1", "z2"]
    # Accounting balances: all granted buffers remain allocated.
    assert summary["free_bytes"] < summary["total_bytes"]
