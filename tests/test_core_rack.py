"""Rack assembly: server roles, Sz transitions, VM creation, failover."""

import pytest

from repro.acpi.states import SleepState
from repro.core.rack import Rack
from repro.core.server import ServerRole
from repro.errors import (ConfigurationError, PlacementError, VmStateError)
from repro.hypervisor.vm import VmSpec
from repro.units import MiB, PAGE_SIZE


class TestConstruction:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Rack(["a", "a"])

    def test_empty_rack_rejected(self):
        with pytest.raises(ConfigurationError):
            Rack([])

    def test_controller_nodes_exist(self, small_rack):
        assert "global-mem-ctr" in small_rack.fabric.nodes
        assert "secondary-ctr" in small_rack.fabric.nodes

    def test_unknown_server_lookup(self, small_rack):
        with pytest.raises(ConfigurationError):
            small_rack.server("nope")


class TestZombieTransitions:
    def test_go_zombie_delegates_memory(self, small_rack):
        small_rack.make_zombie("s3")
        server = small_rack.server("s3")
        assert server.is_zombie
        assert server.manager.lent_bytes > 0
        assert small_rack.pool_summary()["zombie_hosts"] == 1
        assert ServerRole.ZOMBIE in server.roles()

    def test_zombie_with_vms_refused(self, rack_with_zombie):
        rack = rack_with_zombie
        rack.create_vm("s1", VmSpec("v", 32 * MiB), local_fraction=0.5)
        with pytest.raises(VmStateError):
            rack.make_zombie("s1")

    def test_wake_reclaims(self, rack_with_zombie):
        rack = rack_with_zombie
        server = rack.server("s3")
        lent = server.manager.lent_bytes
        latency = rack.wake("s3", reclaim_bytes=lent)
        assert latency == SleepState.SZ.wake_latency_s
        assert server.manager.lent_bytes == 0
        assert not server.is_zombie

    def test_partial_reclaim_keeps_lending(self, rack_with_zombie):
        rack = rack_with_zombie
        server = rack.server("s3")
        lent = server.manager.lent_bytes
        rack.wake("s3", reclaim_bytes=rack.buff_size)
        assert server.manager.lent_bytes == lent - rack.buff_size
        assert ServerRole.ACTIVE in server.roles()

    def test_zombie_lists(self, rack_with_zombie):
        rack = rack_with_zombie
        assert [s.name for s in rack.zombie_servers()] == ["s3"]
        assert {s.name for s in rack.active_servers()} == {"s1", "s2"}


class TestVmOperations:
    def test_create_vm_with_remote_memory(self, rack_with_zombie):
        rack = rack_with_zombie
        vm = rack.create_vm("s1", VmSpec("v", 64 * MiB), local_fraction=0.5)
        assert vm.local_frames_limit == (32 * MiB) // PAGE_SIZE
        store = rack.server("s1").hypervisor.store_for("v")
        assert store.total_slots >= (32 * MiB) // PAGE_SIZE
        assert ServerRole.USER in rack.server("s1").roles()

    def test_fully_local_vm_needs_no_store(self, small_rack):
        vm = small_rack.create_vm("s1", VmSpec("v", 32 * MiB),
                                  local_fraction=1.0)
        assert small_rack.server("s1").hypervisor.store_for("v") is None

    def test_oversized_local_part_refused(self, rack_with_zombie):
        rack = rack_with_zombie
        with pytest.raises(PlacementError):
            rack.create_vm("s1", VmSpec("v", 4096 * MiB), local_fraction=1.0)

    def test_invalid_fraction(self, small_rack):
        with pytest.raises(ConfigurationError):
            small_rack.create_vm("s1", VmSpec("v", 32 * MiB),
                                 local_fraction=0.0)

    def test_destroy_vm_releases_buffers(self, rack_with_zombie):
        rack = rack_with_zombie
        rack.create_vm("s1", VmSpec("v", 64 * MiB), local_fraction=0.5)
        free_before = rack.pool_summary()["free_bytes"]
        rack.destroy_vm("s1", "v")
        assert rack.pool_summary()["free_bytes"] > free_before

    def test_vm_paging_through_the_rack(self, rack_with_zombie):
        rack = rack_with_zombie
        vm = rack.create_vm("s1", VmSpec("v", 16 * MiB), local_fraction=0.5)
        hv = rack.server("s1").hypervisor
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn)
        stats = hv.stats("v")
        assert stats.evictions > 0
        assert rack.fabric.stats.writes > 0


class TestFailover:
    def test_kill_and_promote(self, rack_with_zombie):
        rack = rack_with_zombie
        old = rack.controller
        rack.kill_controller()
        rack.engine.run(until=10.0)
        assert rack.secondary.promoted is not None
        assert rack.controller is not old

    def test_rack_functional_after_failover(self, rack_with_zombie):
        rack = rack_with_zombie
        rack.kill_controller()
        rack.engine.run(until=10.0)
        # allocation still works against the promoted controller
        vm = rack.create_vm("s1", VmSpec("v", 32 * MiB), local_fraction=0.5)
        assert vm is not None
        assert rack.controller.gs_get_lru_zombie() == "s3"

    def test_zombie_survives_failover(self, rack_with_zombie):
        rack = rack_with_zombie
        lent_before = rack.pool_summary()["total_bytes"]
        rack.kill_controller()
        rack.engine.run(until=10.0)
        assert rack.pool_summary()["total_bytes"] == lent_before


class TestPower:
    def test_zombie_cuts_rack_power(self, small_rack):
        before = small_rack.total_power_watts()
        small_rack.make_zombie("s3")
        assert small_rack.total_power_watts() < before
