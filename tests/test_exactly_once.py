"""Exactly-once verb semantics and end-to-end deadline propagation.

The client stamps every logical call with one ``(client_id, seq)``
request id that all retries share; servers answer re-deliveries of
``dedup_required`` verbs from a bounded, epoch-aware dedup table instead
of re-executing.  The remaining deadline budget travels in the request
metadata: servers fast-fail work whose budget is already spent and push
the delivered remainder for nested RPCs to inherit.
"""

import pytest

from repro.errors import DeadlineExceededError, RpcTimeoutError
from repro.rdma.fabric import DUPLICATE, REPLY_LOSS, Fabric, LinkFaults
from repro.rdma.rpc import (DEADLINE_KEY, REQUEST_ID_KEY, RetryPolicy,
                            RpcClient, RpcServer, is_retryable)
from repro.sim.rng import DeterministicRng


def _channel(policy=None, timeout_s=1.0):
    fabric = Fabric()
    a = fabric.add_node("client")
    b = fabric.add_node("server")
    server = RpcServer(b)
    client = RpcClient(a, server, timeout_s=timeout_s, retry_policy=policy)
    return fabric, server, client


def _register_counter(server, verb, calls, idempotency="dedup_required"):
    def bump():
        calls.append(1)
        return len(calls)
    server.register(verb, server.traced(verb, bump, idempotency=idempotency))


class TestExactlyOnce:
    def test_reply_loss_retry_is_answered_from_dedup(self):
        policy = RetryPolicy(max_attempts=4, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        calls = []
        _register_counter(server, "bump", calls)
        fabric.message_faults.script("client", "server", REPLY_LOSS,
                                     method="bump")
        # First delivery executes (reply lost); the retry presents the
        # same request id and is answered from the dedup table.
        assert client.call("bump") == 1
        assert len(calls) == 1
        assert server.dedup_replays == 1
        assert client.retries == 1

    def test_wire_duplicate_executes_once(self):
        policy = RetryPolicy(max_attempts=2, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        calls = []
        _register_counter(server, "bump", calls)
        fabric.message_faults.script("client", "server", DUPLICATE,
                                     method="bump")
        assert client.call("bump") == 1
        assert len(calls) == 1
        assert server.dedup_replays == 1

    def test_unclassified_verb_falls_back_to_at_least_once(self):
        # Verbs without an idempotency class get no dedup protection —
        # the wire duplicate re-executes.  This is the documented
        # fallback for ad-hoc fixture verbs, not a bug.
        policy = RetryPolicy(max_attempts=2, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        calls = []
        server.register("bump", lambda: calls.append(1) or len(calls))
        fabric.message_faults.script("client", "server", DUPLICATE,
                                     method="bump")
        client.call("bump")
        assert len(calls) == 2
        assert server.dedup_replays == 0

    def test_retryable_outcome_is_never_cached(self):
        # A timeout produced no response; the whole point of the retry
        # is to run the handler again, so nothing must be replayed.
        policy = RetryPolicy(max_attempts=4, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 2:
                raise RpcTimeoutError("response lost")
            return "ok"

        server.register("flaky", server.traced(
            "flaky", flaky, idempotency="dedup_required"))
        assert client.call("flaky") == "ok"
        assert len(calls) == 2
        assert server.dedup_replays == 0

    def test_non_retryable_error_is_replayed_from_cache(self):
        fabric, server, client = _channel()
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("handler bug")

        server.register("boom", server.traced(
            "boom", boom, idempotency="dedup_required"))
        req_id = ("client#1", 1)
        with pytest.raises(ValueError):
            server.dispatch("boom", (), {REQUEST_ID_KEY: req_id})
        with pytest.raises(ValueError):
            server.dispatch("boom", (), {REQUEST_ID_KEY: req_id})
        assert len(calls) == 1  # the error is the response; replay it
        assert server.dedup_replays == 1

    def test_request_ids_are_fresh_per_logical_call(self):
        policy = RetryPolicy(max_attempts=2, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        calls = []
        _register_counter(server, "bump", calls)
        assert client.call("bump") == 1
        assert client.call("bump") == 2  # no false dedup across calls
        assert server.dedup_replays == 0
        assert len(server._dedup) == 2

    def test_dedup_table_is_a_bounded_lru(self):
        fabric, server, client = _channel()
        server.dedup_capacity = 3
        calls = []
        _register_counter(server, "bump", calls)
        for seq in range(1, 6):
            server.dispatch("bump", (), {REQUEST_ID_KEY: ("c#1", seq)})
        assert len(server._dedup) == 3
        # The oldest ids were evicted; the newest survive.
        assert set(server._dedup) == {("bump", ("c#1", s)) for s in (3, 4, 5)}

    def test_epoch_advance_purges_stale_entries(self):
        fabric, server, client = _channel()

        def work(epoch=None):
            return epoch

        server.register("work", server.traced(
            "work", work, idempotency="dedup_required"))
        server.dispatch("work", (), {REQUEST_ID_KEY: ("c#1", 1), "epoch": 1})
        server.dispatch("work", (), {REQUEST_ID_KEY: ("c#1", 2), "epoch": 1})
        assert len(server._dedup) == 2
        # The rack moves to epoch 2: epoch-1 responses would be fenced on
        # replay anyway, so they are purged rather than kept warm.
        server.dispatch("work", (), {REQUEST_ID_KEY: ("c#1", 3), "epoch": 2})
        assert set(server._dedup) == {("work", ("c#1", 3))}


class TestDeadlinePropagation:
    def test_spent_budget_fast_fails_before_the_handler(self):
        fabric, server, client = _channel()
        calls = []
        server.register("work", lambda: calls.append(1))
        with pytest.raises(DeadlineExceededError):
            server.dispatch("work", (), {DEADLINE_KEY: 0.0})
        assert calls == []
        assert server.calls_served == 0  # never counted as served

    def test_deadline_exceeded_is_not_retryable(self):
        # Retrying deadline-dead work would only burn more budget.
        assert not is_retryable(DeadlineExceededError("budget spent"))

    def test_injected_latency_exhausts_the_budget_end_to_end(self):
        policy = RetryPolicy(max_attempts=3, deadline_s=1.5,
                             rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        calls = []
        server.register("work", lambda: calls.append(1))
        # 2 s of injected latency against a 1.5 s budget: the request
        # arrives already dead and the server must not execute it.
        fabric.message_faults.set_link("client", "server",
                                       LinkFaults(extra_latency_s=2.0))
        with pytest.raises(DeadlineExceededError):
            client.call("work")
        assert calls == []

    def test_nested_rpc_inherits_the_delivered_budget(self):
        fabric = Fabric()
        edge = fabric.add_node("edge")
        mid = fabric.add_node("mid")
        leaf = fabric.add_node("leaf")
        server_mid, server_leaf = RpcServer(mid), RpcServer(leaf)
        inner = RpcClient(mid, server_leaf, timeout_s=1.0)
        seen = {}

        def leaf_work():
            seen["leaf"] = fabric.current_deadline()
            return "leaf-ok"

        def mid_work():
            seen["mid"] = fabric.current_deadline()
            return inner.call("leaf_work")

        server_leaf.register("leaf_work", server_leaf.traced(
            "leaf_work", leaf_work, idempotency="dedup_required"))
        server_mid.register("mid_work", server_mid.traced(
            "mid_work", mid_work, idempotency="dedup_required"))
        outer = RpcClient(edge, server_mid, timeout_s=1.0,
                          retry_policy=RetryPolicy(max_attempts=2,
                                                   deadline_s=4.0,
                                                   rng=DeterministicRng(7)))
        assert outer.call("mid_work") == "leaf-ok"
        # No sim time flows while a handler runs, so the mid-tier handler
        # sees the full delivered budget and forwards it unshrunk.
        assert seen["mid"] == pytest.approx(4.0)
        assert seen["leaf"] == pytest.approx(4.0)

    def test_nested_budget_shrinks_under_injected_latency(self):
        fabric = Fabric()
        edge = fabric.add_node("edge")
        mid = fabric.add_node("mid")
        leaf = fabric.add_node("leaf")
        server_mid, server_leaf = RpcServer(mid), RpcServer(leaf)
        inner = RpcClient(mid, server_leaf, timeout_s=1.0)
        seen = {}

        def leaf_work():
            seen["leaf"] = fabric.current_deadline()
            return "leaf-ok"

        server_leaf.register("leaf_work", server_leaf.traced(
            "leaf_work", leaf_work, idempotency="dedup_required"))
        server_mid.register("mid_work", server_mid.traced(
            "mid_work", lambda: inner.call("leaf_work"),
            idempotency="dedup_required"))
        outer = RpcClient(edge, server_mid, timeout_s=1.0,
                          retry_policy=RetryPolicy(max_attempts=2,
                                                   deadline_s=4.0,
                                                   rng=DeterministicRng(7)))
        fabric.message_faults.set_link("mid", "leaf",
                                       LinkFaults(extra_latency_s=1.0))
        assert outer.call("mid_work") == "leaf-ok"
        assert seen["leaf"] == pytest.approx(3.0)  # 4.0 minus 1.0 in flight

    def test_calls_without_a_deadline_stay_unbudgeted(self):
        fabric, server, client = _channel()
        seen = {}
        server.register("work",
                        lambda: seen.setdefault("budget",
                                                fabric.current_deadline()))
        client.call("work")
        assert seen["budget"] is None
