"""End-to-end integration: the full stack working together.

These tests exercise the complete paper pipeline — OSPM suspend path →
memory delegation → controller allocation → hypervisor paging over real
RDMA verbs → reclaim on wake → controller failover — with content checks
at every step.
"""

import pytest

from repro.acpi.states import SleepState
from repro.cloud.model import ClusterModel, HostPowerState, VmInstance
from repro.cloud.neat import NeatConsolidator
from repro.core.rack import Rack
from repro.errors import RdmaError
from repro.hypervisor.vm import VmSpec
from repro.units import MiB, PAGE_SIZE


class TestFullPipeline:
    def test_zombie_lifecycle_with_live_vm(self):
        """VM pages to a zombie, zombie wakes and reclaims, VM survives."""
        rack = Rack(["user", "z1", "z2"], memory_bytes=256 * MiB,
                    buff_size=8 * MiB)
        rack.make_zombie("z1")
        rack.make_zombie("z2")

        vm = rack.create_vm("user", VmSpec("vm", 64 * MiB),
                            local_fraction=0.5)
        hv = rack.server("user").hypervisor
        # Touch everything twice: force demotion and remote fills.
        for _ in range(2):
            for ppn in range(vm.spec.total_pages):
                hv.access(vm, ppn)
        stats = hv.stats("vm")
        assert stats.evictions > 0
        assert stats.remote_fills > 0

        # Striping: both zombies should serve buffers.
        store = hv.store_for("vm")
        hosts = {lease.host for lease in store.leases()}
        assert hosts == {"z1", "z2"}

        # Wake z1 and take all its memory back; pages must survive.
        rack.wake("z1", reclaim_bytes=256 * MiB)
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn)
        assert rack.server("z1").manager.lent_bytes == 0

    def test_sz_serves_while_s3_does_not(self):
        rack = Rack(["user", "sleeper"], memory_bytes=128 * MiB,
                    buff_size=8 * MiB)
        rack.make_zombie("sleeper")
        vm = rack.create_vm("user", VmSpec("vm", 32 * MiB),
                            local_fraction=0.5)
        hv = rack.server("user").hypervisor
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn)
        # Force the sleeper all the way down to S3: remote access must die.
        platform = rack.server("sleeper").platform
        platform.firmware.enter_sleep(SleepState.S3)
        platform.remote_ok = platform._compute_remote_ok()
        demoted = next(p for p in range(vm.spec.total_pages)
                       if not vm.table.entry(p).present)
        with pytest.raises(RdmaError):
            hv.access(vm, demoted)

    def test_failover_mid_workload(self):
        rack = Rack(["user", "zombie"], memory_bytes=128 * MiB,
                    buff_size=8 * MiB)
        rack.make_zombie("zombie")
        vm = rack.create_vm("user", VmSpec("vm", 32 * MiB),
                            local_fraction=0.5)
        hv = rack.server("user").hypervisor
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn)

        rack.kill_controller()
        rack.engine.run(until=10.0)
        assert rack.secondary.promoted is not None

        # Data path unaffected (one-sided verbs bypass the controller)...
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn)
        # ...and the control plane works against the new primary.
        rack.destroy_vm("user", "vm")
        assert rack.pool_summary()["free_bytes"] > 0

    def test_two_user_servers_share_one_zombie(self):
        rack = Rack(["u1", "u2", "zombie"], memory_bytes=256 * MiB,
                    buff_size=8 * MiB)
        rack.make_zombie("zombie")
        vm1 = rack.create_vm("u1", VmSpec("vm1", 48 * MiB),
                             local_fraction=0.5)
        vm2 = rack.create_vm("u2", VmSpec("vm2", 48 * MiB),
                             local_fraction=0.5)
        for server, vm in (("u1", vm1), ("u2", vm2)):
            hv = rack.server(server).hypervisor
            for ppn in range(vm.spec.total_pages):
                hv.access(vm, ppn)
        summary = rack.pool_summary()
        assert summary["free_bytes"] < summary["total_bytes"]

    def test_energy_ordering_on_the_real_rack(self):
        """Sz draws less than idle S0 but more than S3, on real boards."""
        rack = Rack(["a", "b", "c"], memory_bytes=128 * MiB)
        s0_power = rack.total_power_watts()
        rack.make_zombie("c")
        sz_power = rack.total_power_watts()
        rack.wake("c")
        rack.server("c").suspend(SleepState.S3)
        s3_power = rack.total_power_watts()
        assert s3_power < sz_power < s0_power


class TestConsolidationIntegration:
    def test_neat_cycle_shrinks_cluster_then_serves_memory(self):
        """Zombie-aware Neat: evacuate, suspend to Sz, then the freed
        memory backs a remote placement."""
        cluster = ClusterModel([f"h{i}" for i in range(4)])
        cluster.host("h0").add_vm(VmInstance("busy", 0.5, 0.4,
                                             cpu_usage=0.5, mem_usage=0.3))
        cluster.host("h1").add_vm(VmInstance("small", 0.1, 0.1,
                                             cpu_usage=0.05, mem_usage=0.05))
        cluster.host("h2").add_vm(VmInstance("tiny", 0.05, 0.1,
                                             cpu_usage=0.03, mem_usage=0.05))
        neat = NeatConsolidator(cluster, zombie_aware=True)
        report = neat.run_cycle()
        assert report.suspensions >= 1
        zombies = cluster.zombie_hosts()
        assert zombies
        assert cluster.remote_pool_free > 0

        # New VM whose memory exceeds any single host's free RAM.
        from repro.cloud.nova import NovaScheduler
        nova = NovaScheduler(cluster)
        big = VmInstance("big", 0.2, 0.8, cpu_usage=0.1, mem_usage=0.5)
        host = nova.place(big)
        assert big.local_mem_fraction < 1.0

    def test_repeated_cycles_are_stable(self):
        cluster = ClusterModel([f"h{i}" for i in range(6)])
        for i in range(6):
            cluster.host(f"h{i}").add_vm(VmInstance(
                f"vm{i}", 0.1, 0.15, cpu_usage=0.05, mem_usage=0.1
            ))
        neat = NeatConsolidator(cluster, zombie_aware=True)
        first = neat.run_cycle()
        second = neat.run_cycle()
        # After convergence, further cycles stop churning.
        assert second.migrations <= first.migrations
        on = [h for h in cluster.on_hosts() if h.vms]
        assert len(on) < 6
