"""The control-plane event log."""

import pytest

from repro.core.events import Event, EventKind, EventLog
from repro.core.rack import Rack
from repro.hypervisor.vm import VmSpec
from repro.units import MiB


class TestEventLog:
    def test_emit_and_order(self):
        log = EventLog()
        log.emit(EventKind.ZOMBIE_ENTER, "h1", buffers=4)
        log.emit(EventKind.ALLOC_EXT, "h2", buffers=2)
        assert len(log) == 2
        assert [e.kind for e in log] == [EventKind.ZOMBIE_ENTER,
                                         EventKind.ALLOC_EXT]
        assert log.last().host == "h2"

    def test_sequence_numbers_monotone(self):
        log = EventLog()
        events = [log.emit(EventKind.HEARTBEAT if False else
                           EventKind.ALLOC_EXT, "h") for _ in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]

    def test_clock_source(self):
        now = [0.0]
        log = EventLog(clock=lambda: now[0])
        now[0] = 42.5
        assert log.emit(EventKind.FAILOVER, "sec").time_s == 42.5

    def test_queries(self):
        log = EventLog()
        log.emit(EventKind.ZOMBIE_ENTER, "h1")
        log.emit(EventKind.ZOMBIE_EXIT, "h1")
        log.emit(EventKind.ZOMBIE_ENTER, "h2")
        assert len(log.of_kind(EventKind.ZOMBIE_ENTER)) == 2
        assert len(log.for_host("h1")) == 2
        assert log.counts() == {"zombie-enter": 2, "zombie-exit": 1}

    def test_capacity_drops_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit(EventKind.ALLOC_EXT, f"h{i}")
        assert len(log) == 3
        assert log.dropped == 2
        assert [e.host for e in log] == ["h2", "h3", "h4"]

    def test_detail_payload(self):
        log = EventLog()
        event = log.emit(EventKind.VM_MIGRATED, "dst", vm="web",
                         from_host="src")
        assert event.detail == {"vm": "web", "from_host": "src"}

    def test_unbounded_log_never_drops(self):
        log = EventLog(capacity=None)
        for _ in range(250):
            log.emit(EventKind.ALLOC_EXT, "h")
        assert len(log) == 250
        assert log.dropped == 0

    def test_metrics_bridge_counts_by_kind(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        log = EventLog(capacity=2)
        log.attach_metrics(registry)
        for _ in range(3):
            log.emit(EventKind.ALLOC_EXT, "h")
        log.emit(EventKind.FAILOVER, "sec")
        # The ring dropped two events, the exported counts did not.
        assert len(log) == 2
        assert registry.value("rack_events_total", kind="alloc-ext") == 3
        assert registry.value("rack_events_total", kind="failover") == 1

    def test_rack_bridges_audit_log_when_telemetry_enabled(self):
        from repro.obs import Telemetry
        rack = Rack(["a", "z"], memory_bytes=128 * MiB, buff_size=8 * MiB,
                    telemetry=Telemetry(enabled=True))
        rack.make_zombie("z")
        registry = rack.telemetry.registry
        assert registry.value("rack_events_total", kind="zombie-enter") == 1


class TestRackAuditTrail:
    def test_full_lifecycle_is_audited(self):
        rack = Rack(["a", "b", "z"], memory_bytes=128 * MiB,
                    buff_size=8 * MiB)
        rack.make_zombie("z")
        rack.create_vm("a", VmSpec("vm", 32 * MiB), local_fraction=0.5)
        rack.migrate_vm("vm", "a", "b")
        rack.destroy_vm("b", "vm")
        rack.wake("z", reclaim_bytes=8 * MiB)

        counts = rack.events.counts()
        assert counts["zombie-enter"] == 1
        assert counts["alloc-ext"] == 1
        assert counts["vm-created"] == 1
        assert counts["vm-migrated"] == 1
        assert counts["vm-destroyed"] == 1
        assert counts["buffers-reclaimed"] == 1
        assert "buffers-transferred" in counts
        assert "buffers-released" in counts

    def test_failover_is_audited_and_log_survives(self):
        rack = Rack(["a"], memory_bytes=128 * MiB, buff_size=8 * MiB)
        rack.make_zombie  # no-op reference; keep rack minimal
        before = len(rack.events)
        rack.kill_controller()
        rack.engine.run(until=10.0)
        assert rack.events.of_kind(EventKind.FAILOVER)
        assert len(rack.events) > before  # same log carried over

    def test_events_timestamped_with_engine_time(self):
        rack = Rack(["a", "z"], memory_bytes=128 * MiB, buff_size=8 * MiB)
        rack.engine.schedule(5.0, lambda: rack.make_zombie("z"))
        rack.engine.run(until=6.0)  # the heartbeat keeps the queue alive
        event = rack.events.of_kind(EventKind.ZOMBIE_ENTER)[0]
        assert event.time_s == 5.0
