"""CLI experiment subcommands (the fast ones) and energy/report paths."""

import pytest

from repro.cli import main


class TestExperimentSubcommands:
    def test_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "100" in out  # both axes reach 100 %

    def test_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "2016" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "2005" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["experiment", "fig9"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 4  # four WSS ratios

    def test_energy_small(self, capsys):
        assert main(["energy", "--servers", "60", "--days", "1"]) == 0
        out = capsys.readouterr().out
        assert "original traces" in out and "ZombieStack" in out

    def test_report_small(self, tmp_path, capsys, monkeypatch):
        import repro.analysis.report as report_module
        monkeypatch.setattr(
            report_module, "generate_report",
            lambda quick, seed: "# stub report\n",
        )
        path = str(tmp_path / "r.md")
        assert main(["report", path]) == 0
        with open(path) as handle:
            assert handle.read().startswith("# stub")


class TestRngDeterminismHelpers:
    def test_choice_and_shuffle_deterministic(self):
        from repro.sim.rng import DeterministicRng
        a, b = DeterministicRng(4), DeterministicRng(4)
        seq_a, seq_b = list(range(20)), list(range(20))
        a.shuffle(seq_a)
        b.shuffle(seq_b)
        assert seq_a == seq_b
        assert a.choice(seq_a) == b.choice(seq_b)

    def test_distribution_passthroughs(self):
        from repro.sim.rng import DeterministicRng
        rng = DeterministicRng(4)
        assert 0.0 <= rng.uniform(0.0, 1.0) <= 1.0
        assert 1 <= rng.randint(1, 5) <= 5
        assert rng.expovariate(1.0) >= 0.0
        samples = [rng.gauss(10.0, 0.1) for _ in range(100)]
        assert 9.5 < sum(samples) / 100 < 10.5


class TestQpTransitionMatrix:
    def test_full_legal_matrix(self):
        from repro.errors import QueuePairError
        from repro.rdma.verbs import QpState, QueuePair, _QP_TRANSITIONS
        for source, targets in _QP_TRANSITIONS.items():
            for target in QpState:
                qp = QueuePair("a", "b")
                qp.state = source
                if target in targets:
                    qp.modify(target)
                    assert qp.state is target
                else:
                    with pytest.raises(QueuePairError):
                        qp.modify(target)

    def test_reconnect_after_destroy(self):
        from repro.rdma.verbs import QpState, QueuePair
        qp = QueuePair("a", "b")
        qp.connect()
        qp.destroy()
        qp.connect()
        assert qp.state is QpState.RTS
