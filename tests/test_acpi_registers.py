"""The PM1A/PM1B sleep-control register block."""

import pytest

from repro.acpi.registers import SLP_EN, Pm1Registers, SleepType
from repro.acpi.states import SleepState
from repro.errors import PowerStateError


class TestSleepType:
    def test_zombie_uses_a_previously_unused_encoding(self):
        standard = {SleepType.S0, SleepType.S3, SleepType.S4, SleepType.S5}
        assert SleepType.SZ not in standard
        assert int(SleepType.SZ) == 6

    def test_round_trip_for_every_state(self):
        for state in SleepState:
            assert SleepType.for_state(state).state is state


class TestPm1Registers:
    def test_write_sleep_invokes_platform_handler(self):
        regs = Pm1Registers()
        seen = []
        regs.connect(seen.append)
        regs.write_sleep(SleepType.SZ)
        assert seen == [SleepState.SZ]

    def test_both_registers_get_the_same_value(self):
        regs = Pm1Registers()
        regs.connect(lambda state: None)
        regs.write_sleep(SleepType.S3)
        assert regs.pm1a_cnt == regs.pm1b_cnt

    def test_slp_en_set_on_final_write(self):
        regs = Pm1Registers()
        regs.connect(lambda state: None)
        regs.write_sleep(SleepType.SZ)
        assert regs.pm1a_cnt & SLP_EN

    def test_latched_type_decodes(self):
        regs = Pm1Registers()
        regs.connect(lambda state: None)
        regs.write_sleep(SleepType.S4)
        assert regs.latched_type() is SleepType.S4

    def test_write_audit_log_records_both_steps(self):
        regs = Pm1Registers()
        regs.connect(lambda state: None)
        regs.write_sleep(SleepType.SZ)
        assert len(regs.writes) == 2
        assert not regs.writes[0] & SLP_EN
        assert regs.writes[1] & SLP_EN

    def test_unconnected_registers_raise(self):
        with pytest.raises(PowerStateError):
            Pm1Registers().write_sleep(SleepType.S3)

    def test_clear_on_wake(self):
        regs = Pm1Registers()
        regs.connect(lambda state: None)
        regs.write_sleep(SleepType.SZ)
        regs.clear()
        assert regs.pm1a_cnt == 0 and regs.pm1b_cnt == 0
