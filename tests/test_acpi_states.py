"""The S-state set, including Sz semantics."""

import pytest

from repro.acpi.states import (SUSPEND_TARGETS, SYSFS_KEYWORDS, SleepState)


class TestStateProperties:
    def test_only_s0_runs_the_cpu(self):
        assert SleepState.S0.cpu_alive
        for state in (SleepState.S3, SleepState.S4, SleepState.S5,
                      SleepState.SZ):
            assert not state.cpu_alive

    def test_memory_powered_states(self):
        assert SleepState.S0.memory_powered
        assert SleepState.S3.memory_powered
        assert SleepState.SZ.memory_powered
        assert not SleepState.S4.memory_powered
        assert not SleepState.S5.memory_powered

    def test_sz_is_the_only_sleeping_state_serving_memory(self):
        serving = [s for s in SleepState
                   if s.memory_remotely_accessible and s.is_sleeping]
        assert serving == [SleepState.SZ]

    def test_s3_retains_but_does_not_serve(self):
        assert SleepState.S3.memory_powered
        assert not SleepState.S3.memory_remotely_accessible

    def test_s0_is_not_sleeping(self):
        assert not SleepState.S0.is_sleeping
        assert all(s.is_sleeping for s in SUSPEND_TARGETS)


class TestWakeLatency:
    def test_sz_wakes_like_s3(self):
        assert SleepState.SZ.wake_latency_s == SleepState.S3.wake_latency_s

    def test_deeper_states_wake_slower(self):
        assert (SleepState.S3.wake_latency_s
                < SleepState.S4.wake_latency_s
                < SleepState.S5.wake_latency_s)

    def test_s0_wake_is_free(self):
        assert SleepState.S0.wake_latency_s == 0.0


class TestSysfsKeywords:
    def test_zom_keyword_added_by_the_patch(self):
        assert SYSFS_KEYWORDS["zom"] is SleepState.SZ

    def test_standard_keywords(self):
        assert SYSFS_KEYWORDS["mem"] is SleepState.S3
        assert SYSFS_KEYWORDS["disk"] is SleepState.S4

    def test_str_renders_paper_name(self):
        assert str(SleepState.SZ) == "Sz"
