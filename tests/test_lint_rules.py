"""ZomLint: a good/bad fixture pair per rule, suppressions, and the CLI."""

from pathlib import Path

import pytest

from repro.lint import ALL_RULES, RULE_DESCRIPTIONS, lint_paths, lint_source
from repro.lint.__main__ import main

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def _rules(findings):
    return [f.rule for f in findings]


class TestZL001WallClock:
    BAD = (
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    GOOD = (
        "def stamp(engine):\n"
        "    return engine.now\n"
    )

    def test_bad(self):
        findings = lint_source(self.BAD)
        assert _rules(findings) == ["ZL001"]
        assert findings[0].line == 3

    def test_good(self):
        assert lint_source(self.GOOD) == []

    def test_datetime_now_flagged(self):
        source = (
            "import datetime\n"
            "t = datetime.datetime.now()\n"
        )
        assert _rules(lint_source(source)) == ["ZL001"]


class TestImportAliasResolution:
    """Aliased imports must not launder impurity past ZL001/ZL002."""

    def test_from_import_alias_wall_clock(self):
        source = (
            "from time import monotonic as _mono\n"
            "def stamp():\n"
            "    return _mono()\n"
        )
        findings = lint_source(source)
        assert _rules(findings) == ["ZL001"]
        assert findings[0].line == 3

    def test_plain_from_import_wall_clock(self):
        source = (
            "from time import perf_counter\n"
            "t = perf_counter()\n"
        )
        assert _rules(lint_source(source)) == ["ZL001"]

    def test_module_alias_wall_clock(self):
        source = (
            "import time as clk\n"
            "t = clk.monotonic()\n"
        )
        assert _rules(lint_source(source)) == ["ZL001"]

    def test_module_alias_random(self):
        source = (
            "import random as rnd\n"
            "jitter = rnd.uniform(0, 1)\n"
        )
        findings = lint_source(source)
        assert _rules(findings) == ["ZL002"]
        assert "random.uniform" in findings[0].message

    def test_datetime_module_alias(self):
        source = (
            "import datetime as dt\n"
            "t = dt.datetime.now()\n"
        )
        assert _rules(lint_source(source)) == ["ZL001"]

    def test_aliased_seeded_random_class_still_allowed(self):
        source = (
            "import random as rnd\n"
            "r = rnd.Random(42)\n"
        )
        assert lint_source(source) == []

    def test_unrelated_alias_is_clean(self):
        source = (
            "import math as m\n"
            "x = m.floor(1.5)\n"
        )
        assert lint_source(source) == []


class TestZL002UnseededRandom:
    BAD_CALL = (
        "import random\n"
        "jitter = random.uniform(0, 1)\n"
    )
    BAD_IMPORT = "from random import choice\n"
    GOOD = (
        "from repro.sim.rng import DeterministicRng\n"
        "jitter = DeterministicRng(0).uniform(0, 1)\n"
    )

    def test_bad_call(self):
        assert _rules(lint_source(self.BAD_CALL)) == ["ZL002"]

    def test_bad_import(self):
        assert _rules(lint_source(self.BAD_IMPORT)) == ["ZL002"]

    def test_good(self):
        assert lint_source(self.GOOD) == []

    def test_seeded_random_class_allowed(self):
        # DeterministicRng itself wraps random.Random(seed).
        assert lint_source("import random\nr = random.Random(42)\n") == []


class TestZL004TimestampEquality:
    BAD = "fired = event.time_s == deadline\n"
    GOOD = "fired = event.time_s >= deadline\n"

    def test_bad(self):
        assert _rules(lint_source(self.BAD)) == ["ZL004"]

    def test_good(self):
        assert lint_source(self.GOOD) == []

    def test_suffix_convention(self):
        assert _rules(lint_source("x = a.detected_at != b.opened_at\n")) \
            == ["ZL004"]

    def test_non_timestamp_equality_untouched(self):
        assert lint_source("same = left.host == right.host\n") == []


class TestZL005SwallowedRpcError:
    BAD = (
        "def probe(client):\n"
        "    try:\n"
        "        client.call('heartbeat')\n"
        "    except RpcError:\n"
        "        pass\n"
    )
    GOOD_RAISE = BAD.replace("pass", "raise")
    GOOD_RETURN = BAD.replace("pass", "return False")
    GOOD_EMIT = BAD.replace("pass", "events.emit(EventKind.HOST_LOST, 'h')")

    def test_bad(self):
        findings = lint_source(self.BAD)
        assert _rules(findings) == ["ZL005"]
        assert findings[0].line == 4

    @pytest.mark.parametrize("source", [GOOD_RAISE, GOOD_RETURN, GOOD_EMIT])
    def test_good(self, source):
        assert lint_source(source) == []

    def test_tuple_catch_flagged(self):
        source = (
            "try:\n"
            "    call()\n"
            "except (RpcTimeoutError, ValueError):\n"
            "    count += 1\n"
        )
        assert _rules(lint_source(source)) == ["ZL005"]


class TestSuppressions:
    def test_matching_rule_is_silenced(self):
        source = (
            "import time\n"
            "t = time.time()  # zl: ignore[ZL001] boot wall-clock banner\n"
        )
        assert lint_source(source) == []

    def test_wrong_rule_does_not_silence(self):
        source = (
            "import time\n"
            "t = time.time()  # zl: ignore[ZL002]\n"
        )
        assert _rules(lint_source(source)) == ["ZL001"]

    def test_suppression_is_line_scoped(self):
        source = (
            "import time\n"
            "a = time.time()  # zl: ignore[ZL001]\n"
            "b = time.time()\n"
        )
        findings = lint_source(source)
        assert [(f.rule, f.line) for f in findings] == [("ZL001", 3)]


def _protocol_tree(tmp_path, register=True, document=True, verbs=("GS_ping",),
                   traced=False):
    """A minimal src/ tree carrying a Method enum, wiring, and docs."""
    core = tmp_path / "src" / "repro" / "core"
    core.mkdir(parents=True)
    members = "\n".join(
        f'    {v.upper()} = "{v}"' for v in verbs)
    (core / "protocol.py").write_text(
        "import enum\n\n"
        "class Method(str, enum.Enum):\n" + members + "\n")
    if register:
        if traced:
            registrations = "\n".join(
                f"    rpc.register(Method.{v.upper()}.value,\n"
                f"                 rpc.traced(Method.{v.upper()}.value, "
                f"handler))"
                for v in verbs)
        else:
            registrations = "\n".join(
                f"    rpc.register(Method.{v.upper()}.value, handler)"
                for v in verbs)
        (core / "wiring.py").write_text(
            "from repro.core.protocol import Method\n\n"
            "def wire(rpc, handler):\n" + registrations + "\n")
    if document:
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "PROTOCOL.md").write_text(
            "# protocol\n\n" + "\n".join(f"`{v}` does things." for v in verbs))
    return tmp_path / "src"


class TestZL003ProtocolExhaustiveness:
    def test_registered_and_documented_verb_is_clean(self, tmp_path):
        src = _protocol_tree(tmp_path)
        assert lint_paths([str(src)]) == []

    def test_unregistered_verb_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path, register=False)
        findings = lint_paths([str(src)])
        assert _rules(findings) == ["ZL003"]
        assert "dispatch handler" in findings[0].message

    def test_undocumented_verb_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path, verbs=("GS_ping", "GS_pong"))
        doc = tmp_path / "docs" / "PROTOCOL.md"
        doc.write_text(doc.read_text().replace("`GS_pong` does things.", ""))
        findings = lint_paths([str(src)])
        assert _rules(findings) == ["ZL003"]
        assert "GS_pong" in findings[0].message

    def test_missing_protocol_doc_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path, document=False)
        findings = lint_paths([str(src)])
        assert _rules(findings) == ["ZL003"]
        assert "not found" in findings[0].message

    def test_local_alias_registration_counts(self, tmp_path):
        src = _protocol_tree(tmp_path, register=False)
        (tmp_path / "src" / "repro" / "core" / "wiring.py").write_text(
            "from repro.core.protocol import Method\n\n"
            "def wire(rpc, handler):\n"
            "    register = rpc.register\n"
            "    register(Method.GS_PING.value, handler)\n")
        assert lint_paths([str(src)]) == []


def _model_file(tmp_path, verbs):
    """A minimal check/model.py carrying only the verb contract."""
    check = tmp_path / "src" / "repro" / "check"
    check.mkdir(parents=True, exist_ok=True)
    (check / "model.py").write_text(
        "RPC_ACTION_VERBS = (\n"
        + "".join(f'    "{v}",\n' for v in verbs) + ")\n")


class TestZL006ModelDrift:
    def test_agreeing_model_is_clean(self, tmp_path):
        src = _protocol_tree(tmp_path, traced=True)
        _model_file(tmp_path, ("GS_ping",))
        assert lint_paths([str(src)]) == []

    def test_unmodelled_handler_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path, verbs=("GS_ping", "GS_pong"))
        _model_file(tmp_path, ("GS_ping",))
        findings = lint_paths([str(src)], rules=["ZL006"])
        assert _rules(findings) == ["ZL006"]
        assert "GS_pong" in findings[0].message
        assert "absent from the model" in findings[0].message

    def test_phantom_model_verb_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path)
        _model_file(tmp_path, ("GS_ping", "GS_phantom"))
        findings = lint_paths([str(src)], rules=["ZL006"])
        assert _rules(findings) == ["ZL006"]
        assert "GS_phantom" in findings[0].message
        assert "nothing dispatches" in findings[0].message

    def test_missing_verb_tuple_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path)
        check = tmp_path / "src" / "repro" / "check"
        check.mkdir(parents=True, exist_ok=True)
        (check / "model.py").write_text("ACTIONS = ()\n")
        findings = lint_paths([str(src)], rules=["ZL006"])
        assert _rules(findings) == ["ZL006"]
        assert "cannot run" in findings[0].message

    def test_tree_without_model_is_exempt(self, tmp_path):
        src = _protocol_tree(tmp_path)
        assert lint_paths([str(src)], rules=["ZL006"]) == []

    def test_repository_model_matches_dispatch_tables(self):
        assert lint_paths([str(REPO_SRC)], rules=["ZL006"]) == []


class TestZL007TracedRegistrations:
    def test_traced_registration_is_clean(self, tmp_path):
        src = _protocol_tree(tmp_path, traced=True)
        _model_file(tmp_path, ("GS_ping",))
        assert lint_paths([str(src)], rules=["ZL007"]) == []

    def test_bare_protocol_registration_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path)
        _model_file(tmp_path, ("GS_ping",))
        findings = lint_paths([str(src)], rules=["ZL007"])
        assert _rules(findings) == ["ZL007"]
        assert "GS_ping" in findings[0].message
        assert "traced" in findings[0].message

    def test_verb_outside_model_contract_is_exempt(self, tmp_path):
        # A registered verb the model does not check (ZL006's finding)
        # is not also piled on by ZL007.
        src = _protocol_tree(tmp_path, verbs=("GS_ping", "GS_pong"))
        _model_file(tmp_path, ("GS_ping", "GS_pong"))
        wiring = tmp_path / "src" / "repro" / "core" / "wiring.py"
        wiring.write_text(
            "from repro.core.protocol import Method\n\n"
            "def wire(rpc, handler):\n"
            "    rpc.register(Method.GS_PING.value,\n"
            "                 rpc.traced(Method.GS_PING.value, handler))\n"
            "    rpc.register('fixture_only', handler)\n"
            "    register = rpc.register\n"
            "    register(Method.GS_PONG.value, handler)\n")
        findings = lint_paths([str(src)], rules=["ZL007"])
        # plain-string fixtures exempt; the aliased bare GS_pong is not.
        assert _rules(findings) == ["ZL007"]
        assert "GS_pong" in findings[0].message

    def test_mismatched_traced_verb_flagged(self, tmp_path):
        src = _protocol_tree(tmp_path, verbs=("GS_ping", "GS_pong"))
        _model_file(tmp_path, ("GS_ping", "GS_pong"))
        wiring = tmp_path / "src" / "repro" / "core" / "wiring.py"
        wiring.write_text(
            "from repro.core.protocol import Method\n\n"
            "def wire(rpc, handler):\n"
            "    rpc.register(Method.GS_PING.value,\n"
            "                 rpc.traced(Method.GS_PONG.value, handler))\n"
            "    rpc.register(Method.GS_PONG.value,\n"
            "                 rpc.traced(Method.GS_PONG.value, handler))\n")
        findings = lint_paths([str(src)], rules=["ZL007"])
        assert _rules(findings) == ["ZL007"]
        assert "carry the verb" in findings[0].message

    def test_tree_without_model_is_exempt(self, tmp_path):
        src = _protocol_tree(tmp_path)  # bare registrations, no model.py
        assert lint_paths([str(src)], rules=["ZL007"]) == []

    def test_repository_registrations_all_traced(self):
        assert lint_paths([str(REPO_SRC)], rules=["ZL007"]) == []


class TestZL007AuditMetricContract:
    _MONITOR_OK = (
        "class Monitor:\n"
        "    def publish(self, registry):\n"
        "        registry.gauge('host_memory_bytes', 'Cap.').set(1)\n"
        "        registry.gauge('stranded_bytes', 'Idle.').set(0)\n"
        "        registry.gauge('zombie_pool_bytes', 'Pool.').set(0)\n"
        "        registry.gauge('zombie_pool_free_bytes', 'Free.').set(0)\n"
    )

    def _tree(self, tmp_path, monitor_source):
        src = tmp_path / "src" / "repro"
        energy = src / "energy"
        energy.mkdir(parents=True)
        (energy / "rack_monitor.py").write_text(monitor_source)
        return tmp_path / "src"

    def test_all_audit_gauges_registered_is_clean(self, tmp_path):
        src = self._tree(tmp_path, self._MONITOR_OK)
        assert lint_paths([str(src)], rules=["ZL007"]) == []

    def test_dropped_audit_gauge_flagged(self, tmp_path):
        dropped = self._MONITOR_OK.replace(
            "        registry.gauge('stranded_bytes', 'Idle.').set(0)\n", "")
        src = self._tree(tmp_path, dropped)
        findings = lint_paths([str(src)], rules=["ZL007"])
        assert _rules(findings) == ["ZL007"]
        assert "stranded_bytes" in findings[0].message
        assert "unmeasurable" in findings[0].message

    def test_renamed_audit_gauge_flagged(self, tmp_path):
        renamed = self._MONITOR_OK.replace("'zombie_pool_bytes'",
                                           "'zombie_bytes'")
        src = self._tree(tmp_path, renamed)
        findings = lint_paths([str(src)], rules=["ZL007"])
        assert [f for f in findings
                if "zombie_pool_bytes" in f.message]

    def test_tree_without_contract_modules_is_exempt(self, tmp_path):
        src = tmp_path / "src" / "repro" / "util"
        src.mkdir(parents=True)
        (src / "misc.py").write_text("X = 1\n")
        assert lint_paths([str(tmp_path / "src")], rules=["ZL007"]) == []

    def test_repository_satisfies_audit_metric_contract(self):
        assert lint_paths([str(REPO_SRC)], rules=["ZL007"]) == []


def _idem_tree(tmp_path, contract=None, registered=None, classes=True,
               model_verbs=("GS_ping",)):
    """A minimal tree carrying the delivery-semantics contract.

    ``contract`` maps verb → class in ``VERB_IDEMPOTENCY``;
    ``registered`` maps verb → the ``idempotency=`` argument source text
    at the ``traced(...)`` site (None omits the keyword entirely).
    """
    contract = {"GS_ping": "read_only"} if contract is None else contract
    registered = ({v: f'"{c}"' for v, c in contract.items()}
                  if registered is None else registered)
    core = tmp_path / "src" / "repro" / "core"
    core.mkdir(parents=True)
    lines = ["import enum\n", "\n", "class Method(str, enum.Enum):\n"]
    lines += [f'    {v.upper()} = "{v}"\n'
              for v in sorted(set(contract) | set(registered))]
    if classes:
        lines += ['\nIDEMPOTENCY_CLASSES = ("read_only", "idempotent", '
                  '"dedup_required")\n']
    lines += ["\nVERB_IDEMPOTENCY = {\n"]
    lines += [f'    "{v}": "{c}",\n' for v, c in contract.items()]
    lines += ["}\n"]
    (core / "protocol.py").write_text("".join(lines))
    registrations = []
    for verb, arg in registered.items():
        kw = "" if arg is None else f", idempotency={arg}"
        registrations.append(
            f"    rpc.register(Method.{verb.upper()}.value,\n"
            f"                 rpc.traced(Method.{verb.upper()}.value, "
            f"handler{kw}))\n")
    (core / "wiring.py").write_text(
        "from repro.core.protocol import Method\n\n"
        "def wire(rpc, handler):\n" + "".join(registrations))
    _model_file(tmp_path, model_verbs)
    return tmp_path / "src"


class TestZL008IdempotencyDeclarations:
    def test_declared_registration_is_clean(self, tmp_path):
        src = _idem_tree(tmp_path)
        assert lint_paths([str(src)], rules=["ZL008"]) == []

    def test_missing_keyword_flagged(self, tmp_path):
        src = _idem_tree(tmp_path, registered={"GS_ping": None})
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "without an idempotency=" in findings[0].message

    def test_contradicting_class_flagged(self, tmp_path):
        src = _idem_tree(tmp_path, registered={"GS_ping": '"idempotent"'})
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "contradicts the contract" in findings[0].message

    def test_computed_class_flagged(self, tmp_path):
        src = _idem_tree(tmp_path, registered={"GS_ping": "some_variable"})
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "computed idempotency class" in findings[0].message

    def test_unknown_class_name_flagged(self, tmp_path):
        src = _idem_tree(tmp_path, contract={"GS_ping": "best_effort"})
        findings = lint_paths([str(src)], rules=["ZL008"])
        rules = _rules(findings)
        assert "ZL008" in rules
        assert any("unknown idempotency class" in f.message
                   for f in findings)

    def test_undeclared_model_verb_flagged(self, tmp_path):
        src = _idem_tree(tmp_path, model_verbs=("GS_ping", "GS_pong"))
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "GS_pong" in findings[0].message
        assert "undeclared" in findings[0].message

    def test_contract_verb_outside_model_flagged(self, tmp_path):
        src = _idem_tree(
            tmp_path,
            contract={"GS_ping": "read_only", "GS_ghost": "idempotent"},
            registered={"GS_ping": '"read_only"'})
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "GS_ghost" in findings[0].message
        assert "nothing dispatches" in findings[0].message

    def test_missing_classes_tuple_flagged(self, tmp_path):
        src = _idem_tree(tmp_path, classes=False)
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "IDEMPOTENCY_CLASSES" in findings[0].message

    def test_tree_without_contract_is_exempt(self, tmp_path):
        # Pre-contract trees (like every other rule's fixtures) carry no
        # VERB_IDEMPOTENCY literal and must stay clean.
        src = _protocol_tree(tmp_path, traced=True)
        assert lint_paths([str(src)], rules=["ZL008"]) == []

    def test_repository_contract_and_registrations_agree(self):
        assert lint_paths([str(REPO_SRC)], rules=["ZL008"]) == []


class TestZL007FedMetricContract:
    """The ZomFed entries of the fleet-audit metric contract."""

    _FABRIC_OK = (
        "class Fabric:\n"
        "    def charge(self, registry):\n"
        "        registry.counter('fed_cross_rack_ops_total', 'O.').inc()\n"
        "        registry.counter('fed_cross_rack_bytes_total', 'B.')"
        ".inc(1)\n"
        "        registry.counter('fed_cross_rack_joules_total', 'J.')"
        ".inc(0.1)\n"
    )
    _DIRECTORY_OK = (
        "class Directory:\n"
        "    def publish(self, registry):\n"
        "        registry.gauge('fed_rack_alive', 'Up.').set(1)\n"
        "        registry.gauge('fed_rack_free_zombie_bytes', 'F.').set(0)\n"
    )

    def _tree(self, tmp_path, fabric_source, directory_source):
        src = tmp_path / "src" / "repro"
        (src / "rdma").mkdir(parents=True)
        (src / "rdma" / "fabric.py").write_text(fabric_source)
        (src / "fed").mkdir(parents=True)
        (src / "fed" / "directory.py").write_text(directory_source)
        return tmp_path / "src"

    def test_all_fed_metrics_registered_is_clean(self, tmp_path):
        src = self._tree(tmp_path, self._FABRIC_OK, self._DIRECTORY_OK)
        assert lint_paths([str(src)], rules=["ZL007"]) == []

    def test_dropped_cross_rack_energy_counter_flagged(self, tmp_path):
        dropped = self._FABRIC_OK.replace(
            "        registry.counter('fed_cross_rack_joules_total', 'J.')"
            ".inc(0.1)\n", "")
        src = self._tree(tmp_path, dropped, self._DIRECTORY_OK)
        findings = lint_paths([str(src)], rules=["ZL007"])
        assert _rules(findings) == ["ZL007"]
        assert "fed_cross_rack_joules_total" in findings[0].message

    def test_dropped_rack_liveness_gauge_flagged(self, tmp_path):
        dropped = self._DIRECTORY_OK.replace(
            "        registry.gauge('fed_rack_alive', 'Up.').set(1)\n", "")
        src = self._tree(tmp_path, self._FABRIC_OK, dropped)
        findings = lint_paths([str(src)], rules=["ZL007"])
        assert _rules(findings) == ["ZL007"]
        assert "fed_rack_alive" in findings[0].message


class TestZL008FedVerbs:
    """The delivery-semantics contract over the cross-rack verb pair."""

    def test_declared_fed_registration_is_clean(self, tmp_path):
        src = _idem_tree(tmp_path,
                         contract={"FED_borrow": "dedup_required",
                                   "FED_return": "dedup_required"},
                         model_verbs=("FED_borrow", "FED_return"))
        assert lint_paths([str(src)], rules=["ZL008"]) == []

    def test_fed_borrow_registered_as_idempotent_flagged(self, tmp_path):
        # Re-executing a borrow grants the loan twice; the registration
        # literal must match the contract's dedup_required.
        src = _idem_tree(tmp_path,
                         contract={"FED_borrow": "dedup_required"},
                         registered={"FED_borrow": '"idempotent"'},
                         model_verbs=("FED_borrow",))
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "FED_borrow" in findings[0].message
        assert "contradicts the contract" in findings[0].message

    def test_fed_verb_missing_from_contract_flagged(self, tmp_path):
        src = _idem_tree(tmp_path,
                         contract={"FED_borrow": "dedup_required"},
                         model_verbs=("FED_borrow", "FED_return"))
        findings = lint_paths([str(src)], rules=["ZL008"])
        assert _rules(findings) == ["ZL008"]
        assert "FED_return" in findings[0].message
        assert "undeclared" in findings[0].message


class TestDriver:
    def test_syntax_error_reported_as_zl000(self):
        findings = lint_source("def broken(:\n")
        assert _rules(findings) == ["ZL000"]

    def test_rule_catalogue_is_complete(self):
        assert ALL_RULES == ("ZL001", "ZL002", "ZL003", "ZL004", "ZL005",
                             "ZL006", "ZL007", "ZL008")
        assert all(RULE_DESCRIPTIONS[r] for r in ALL_RULES)

    def test_repository_source_tree_is_clean(self):
        assert lint_paths([str(REPO_SRC)]) == []

    def test_cli_exit_zero_on_clean_tree(self):
        assert main([str(REPO_SRC)]) == 0

    def test_cli_exit_one_on_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        assert main([str(bad)]) == 1

    def test_cli_list_rules(self):
        assert main(["--list-rules"]) == 0

    def test_cli_stats_reports_suppression_counts(self, tmp_path, capsys):
        src = tmp_path / "mod.py"
        src.write_text(
            "import time\n"
            "boot = time.time()  # zl: ignore[ZL001] boot stamp only\n"
            "t = time.time()\n"
        )
        assert main([str(src), "--stats"]) == 1
        out = capsys.readouterr().out
        stats_line = next(line for line in out.splitlines()
                          if line.startswith("ZL001"))
        # one surviving finding, one suppressed
        assert stats_line.split() == ["ZL001", "1", "1"]

    def test_lint_paths_counted_tallies_suppressions(self, tmp_path):
        from repro.lint.engine import lint_paths_counted
        src = tmp_path / "mod.py"
        src.write_text(
            "import time\n"
            "boot = time.time()  # zl: ignore[ZL001] boot stamp only\n"
        )
        findings, suppressed = lint_paths_counted([str(src)])
        assert findings == []
        assert suppressed == {"ZL001": 1}
