"""Retry policy and per-channel circuit breaker, on simulated time only."""

import pytest

from repro.errors import (CircuitOpenError, RdmaError, RpcError,
                          RpcTimeoutError)
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import (BreakerState, CircuitBreaker, RetryPolicy,
                            RpcClient, RpcServer, is_retryable)
from repro.sim.engine import Engine
from repro.sim.rng import DeterministicRng


def _channel(policy=None, timeout_s=1.0):
    fabric = Fabric()
    a = fabric.add_node("client")
    b = fabric.add_node("server")
    server = RpcServer(b)
    client = RpcClient(a, server, timeout_s=timeout_s, retry_policy=policy)
    return fabric, server, client


class TestRetryability:
    def test_timeout_and_link_faults_retryable(self):
        assert is_retryable(RpcTimeoutError("poll deadline"))
        assert is_retryable(RdmaError("link down"))

    def test_protocol_errors_not_retryable(self):
        assert not is_retryable(RpcError("unknown method"))
        assert not is_retryable(ValueError("handler bug"))


class TestRetryLoop:
    def test_transient_partition_is_retried(self):
        policy = RetryPolicy(max_attempts=4, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                # Simulate the fabric dropping the response twice.
                raise RpcTimeoutError("response lost")
            return "ok"

        server.register("flaky", flaky)
        assert client.call("flaky") == "ok"
        assert len(calls) == 3
        assert client.retries == 2
        assert policy.stats.retries == 2
        assert policy.stats.calls == 1
        assert policy.stats.attempts == 3

    def test_gives_up_after_max_attempts(self):
        policy = RetryPolicy(max_attempts=3, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        fabric.partition("server")
        with pytest.raises(RpcTimeoutError):
            client.call("anything")
        assert policy.stats.attempts == 3
        assert policy.stats.giveups == 1

    def test_non_retryable_error_is_single_shot(self):
        policy = RetryPolicy(max_attempts=5, rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        with pytest.raises(RpcError):
            client.call("no_such_method")
        assert policy.stats.attempts == 1
        # Protocol answers prove the channel works: breaker stays closed.
        assert client.breaker.state is BreakerState.CLOSED
        assert client.breaker.consecutive_failures == 0

    def test_deadline_bounds_total_simulated_time(self):
        # timeout 1 s/attempt, so the third attempt would push past 2.5 s.
        policy = RetryPolicy(max_attempts=10, deadline_s=2.5,
                             rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        fabric.partition("server")
        with pytest.raises(RpcTimeoutError):
            client.call("anything")
        assert policy.stats.attempts <= 3
        assert policy.stats.deadline_exhausted == 1

    def test_backoff_is_deterministic_and_bounded(self):
        mk = lambda: RetryPolicy(base_backoff_s=0.010, backoff_multiplier=2.0,
                                 max_backoff_s=0.05, jitter_fraction=0.25,
                                 rng=DeterministicRng(42))
        a, b = mk(), mk()
        seq_a = [a.backoff_delay(i) for i in range(1, 8)]
        seq_b = [b.backoff_delay(i) for i in range(1, 8)]
        assert seq_a == seq_b  # same seed, same jitter
        for i, delay in enumerate(seq_a, start=1):
            raw = min(0.05, 0.010 * 2.0 ** (i - 1))
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_no_retry_policy_is_single_attempt(self):
        policy = RetryPolicy.no_retry()
        fabric, server, client = _channel(policy)
        fabric.partition("server")
        with pytest.raises(RpcTimeoutError):
            client.call("anything")
        assert policy.stats.attempts == 1

    def test_bare_client_has_no_breaker(self):
        _, _, client = _channel(policy=None)
        assert client.breaker is None


class TestCircuitBreaker:
    def test_trips_after_threshold_and_fails_fast(self):
        engine = Engine()
        policy = RetryPolicy.no_retry(clock=lambda: engine.now,
                                      failure_threshold=3, cooldown_s=10.0)
        fabric, server, client = _channel(policy)
        fabric.partition("server")
        for _ in range(3):
            with pytest.raises(RpcTimeoutError):
                client.call("x")
        assert client.breaker.state is BreakerState.OPEN
        assert client.breaker.trips == 1
        served_before = client.calls_made
        with pytest.raises(CircuitOpenError):
            client.call("x")
        assert client.calls_made == served_before  # no fabric traffic
        assert client.breaker.fast_failures == 1

    def test_half_open_probe_success_closes(self):
        engine = Engine()
        policy = RetryPolicy.no_retry(clock=lambda: engine.now,
                                      failure_threshold=2, cooldown_s=5.0)
        fabric, server, client = _channel(policy)
        server.register("ping", lambda: "pong")
        fabric.partition("server")
        for _ in range(2):
            with pytest.raises(RpcTimeoutError):
                client.call("ping")
        assert client.breaker.state is BreakerState.OPEN

        # Cooldown passes on the *sim* clock; the channel heals meanwhile.
        fabric.heal("server")
        engine.schedule_at(6.0, lambda: None)
        engine.run()
        assert engine.now == 6.0
        assert client.call("ping") == "pong"
        assert client.breaker.state is BreakerState.CLOSED
        assert client.breaker.half_opens == 1
        assert client.breaker.closes == 1

    def test_heal_half_opens_without_waiting_out_cooldown(self):
        # Fabric.heal() is positive evidence the channel is back; the
        # breaker moves OPEN → HALF_OPEN immediately so the next call is
        # a probe, instead of fast-failing for the rest of the cooldown.
        engine = Engine()
        policy = RetryPolicy.no_retry(clock=lambda: engine.now,
                                      failure_threshold=2, cooldown_s=500.0)
        fabric, server, client = _channel(policy)
        server.register("ping", lambda: "pong")
        fabric.partition("server")
        for _ in range(2):
            with pytest.raises(RpcTimeoutError):
                client.call("ping")
        assert client.breaker.state is BreakerState.OPEN

        fabric.heal("server")  # no sim time passes at all
        assert client.breaker.state is BreakerState.HALF_OPEN
        assert client.call("ping") == "pong"
        assert client.breaker.state is BreakerState.CLOSED
        assert client.breaker.half_opens == 1
        assert client.breaker.closes == 1

    def test_heal_leaves_closed_and_half_open_breakers_alone(self):
        engine = Engine()
        policy = RetryPolicy.no_retry(clock=lambda: engine.now,
                                      failure_threshold=2, cooldown_s=5.0)
        fabric, server, client = _channel(policy)
        assert client.breaker.state is BreakerState.CLOSED
        fabric.heal("server")  # healing an unbroken channel: no-op
        assert client.breaker.state is BreakerState.CLOSED
        assert client.breaker.half_opens == 0

        fabric.partition("server")
        for _ in range(2):
            with pytest.raises(RpcTimeoutError):
                client.call("x")
        fabric.heal("server")
        fabric.heal("server")  # second heal must not double-count
        assert client.breaker.state is BreakerState.HALF_OPEN
        assert client.breaker.half_opens == 1

    def test_half_open_probe_failure_reopens(self):
        engine = Engine()
        policy = RetryPolicy.no_retry(clock=lambda: engine.now,
                                      failure_threshold=2, cooldown_s=5.0)
        fabric, server, client = _channel(policy)
        fabric.partition("server")
        for _ in range(2):
            with pytest.raises(RpcTimeoutError):
                client.call("x")
        engine.schedule_at(6.0, lambda: None)
        engine.run()
        with pytest.raises(RpcTimeoutError):
            client.call("x")  # the half-open probe, still partitioned
        assert client.breaker.state is BreakerState.OPEN
        assert client.breaker.trips == 2
        # The fresh OPEN stint starts at the probe time, not the old trip.
        assert client.breaker.opened_at == 6.0

    def test_retry_loop_stops_when_breaker_trips_midcall(self):
        engine = Engine()
        policy = RetryPolicy(max_attempts=10, deadline_s=None,
                             failure_threshold=2, cooldown_s=5.0,
                             clock=lambda: engine.now,
                             rng=DeterministicRng(7))
        fabric, server, client = _channel(policy)
        fabric.partition("server")
        with pytest.raises(RpcTimeoutError):
            client.call("x")
        # Tripped on the 2nd failure; didn't burn the other 8 attempts.
        assert policy.stats.attempts == 2
        assert client.breaker.state is BreakerState.OPEN

    def test_breaker_is_per_channel_even_with_shared_policy(self):
        engine = Engine()
        policy = RetryPolicy.no_retry(clock=lambda: engine.now,
                                      failure_threshold=1)
        fabric = Fabric()
        n = fabric.add_node("client")
        s1 = RpcServer(fabric.add_node("s1"))
        s2 = RpcServer(fabric.add_node("s2"))
        s2.register("ping", lambda: "pong")
        c1 = RpcClient(n, s1, retry_policy=policy)
        c2 = RpcClient(n, s2, retry_policy=policy)
        fabric.partition("s1")
        with pytest.raises(RpcTimeoutError):
            c1.call("ping")
        assert c1.breaker.state is BreakerState.OPEN
        assert c2.breaker.state is BreakerState.CLOSED
        assert c2.call("ping") == "pong"  # unaffected channel

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
