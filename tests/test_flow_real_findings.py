"""Regression tests for the real findings ZomFlow surfaced and this
change fixed.

Each test *re-introduces* the defect by patching the real source text in
memory (un-fixing it) and asserts the rule fires with the expected
fingerprint — proving both that the fix is load-bearing for the analysis
and that the rule would catch the regression.  The pristine tree must
NOT carry these fingerprints, and the checked-in baseline must match the
pristine tree exactly (the flowcheck CI job's contract).
"""

from pathlib import Path

import pytest

from repro.flow import (analyze_sources, diff_against_baseline,
                        load_baseline, load_sources)
from repro.flow.purity import RANDOM_ALLOWED, WALL_CLOCK_CALLS
from repro.lint.rules import _RANDOM_ALLOWED, _WALL_CLOCK_CALLS

GS_RECLAIM_GUARD = (
    "            if descriptor.buffer_id not in self.db:\n"
    "                continue\n"
)
HOST_LOST_GUARD = (
    "                if descriptor.buffer_id not in controller.db:\n"
    "                    continue\n"
)
RESYNC_REREAD = (
    "        owed = self._pending_resync.get(host)\n"
    "        if owed is None:\n"
    "            return\n"
    "        remaining = [x for x in owed if x not in stale]\n"
    "        if remaining:\n"
    "            self._pending_resync[host] = remaining\n"
    "        else:\n"
    "            del self._pending_resync[host]\n"
)


@pytest.fixture(scope="module")
def real_sources():
    return load_sources(["src"])


def _fingerprints(sources, rules=None):
    return {f.fingerprint for f in analyze_sources(sources, rules=rules)}


def _unfix(sources, path_tail, old, new):
    patched = dict(sources)
    target = next(p for p in patched if str(p).endswith(path_tail))
    assert old in patched[target], f"expected fixed code in {path_tail}"
    patched[target] = patched[target].replace(old, new)
    return patched


class TestInjectedDefects:
    def test_unfixing_gs_reclaim_revalidation_fires_zl010(self,
                                                          real_sources):
        fp = ("ZL010:repro.core.controller:"
              "GlobalMemoryController.gs_reclaim:leases")
        assert fp not in _fingerprints(real_sources, rules=["ZL010"])
        patched = _unfix(real_sources, "core/controller.py",
                         GS_RECLAIM_GUARD, "")
        assert fp in _fingerprints(patched, rules=["ZL010"])

    def test_unfixing_declare_host_lost_revalidation_fires_zl010(
            self, real_sources):
        fp = ("ZL010:repro.core.recovery:"
              "RecoveryCoordinator.declare_host_lost:leases")
        assert fp not in _fingerprints(real_sources, rules=["ZL010"])
        patched = _unfix(real_sources, "core/recovery.py",
                         HOST_LOST_GUARD, "")
        assert fp in _fingerprints(patched, rules=["ZL010"])

    def test_unfixing_try_resync_reread_fires_zl010(self, real_sources):
        fp = ("ZL010:repro.core.recovery:"
              "RecoveryCoordinator._try_resync:recovery")
        assert fp not in _fingerprints(real_sources, rules=["ZL010"])
        patched = _unfix(real_sources, "core/recovery.py", RESYNC_REREAD,
                         "        del self._pending_resync[host]\n")
        assert fp in _fingerprints(patched, rules=["ZL010"])

    def test_dropping_verb_errors_declaration_fires_zl011(self,
                                                          real_sources):
        # AllocationError is declared for GS_alloc_ext; removing the
        # declaration must surface the escape again.
        fp = "ZL011:GS_alloc_ext:AllocationError"
        assert fp not in _fingerprints(real_sources, rules=["ZL011"])
        patched = _unfix(real_sources, "core/protocol.py",
                         '"GS_alloc_ext": ("AllocationError",),',
                         '"GS_alloc_ext": (),')
        assert fp in _fingerprints(patched, rules=["ZL011"])


class TestUnitMutations:
    """ZomDim acceptance: the two seeded unit mutations from the issue
    (watts-for-joules in the meter, dropped PAGE_SIZE conversion in the
    rack monitor) must be detected with a full inference chain naming
    source and sink."""

    def test_watts_for_joules_swap_in_meter_fires_zl012(self,
                                                        real_sources):
        fp = ("ZL012:repro.energy.meter:"
              "EnergyMeter.accumulate:aug:joules:watts")
        assert fp not in _fingerprints(real_sources, rules=["ZL012"])
        patched = _unfix(
            real_sources, "energy/meter.py",
            "self._joules += watts_x_seconds(power_watts, duration_s)",
            "self._joules += power_watts")
        findings = [f for f in analyze_sources(patched, rules=["ZL012"])
                    if f.fingerprint == fp]
        assert len(findings) == 1
        # Full inference chain: sink (the joules accumulator) and source
        # (the watts parameter) both named.
        assert "'._joules'" in findings[0].message
        assert "parameter 'power_watts'" in findings[0].message

    def test_dropped_page_size_conversion_fires_zl014(self, real_sources):
        fp = ("ZL014:repro.energy.rack_monitor:"
              "RackEnergyMonitor._publish_memory_gauges:"
              "host_memory_bytes:frames")
        assert fp not in _fingerprints(real_sources, rules=["ZL014"])
        patched = _unfix(
            real_sources, "energy/rack_monitor.py",
            ").set(pages_to_bytes(server.allocator.total_frames))",
            ").set(server.allocator.total_frames)")
        findings = [f for f in analyze_sources(patched, rules=["ZL014"])
                    if f.fingerprint == fp]
        assert len(findings) == 1
        assert "host_memory_bytes" in findings[0].message
        assert "'.total_frames'" in findings[0].message

    def test_dropped_conversion_in_host_samples_fires_zl012(self,
                                                            real_sources):
        fp = ("ZL012:repro.energy.rack_monitor:"
              "RackEnergyMonitor.host_samples:"
              "kwarg:capacity_bytes:bytes:frames")
        assert fp not in _fingerprints(real_sources, rules=["ZL012"])
        patched = _unfix(
            real_sources, "energy/rack_monitor.py",
            "capacity_bytes=pages_to_bytes(server.allocator.total_frames)",
            "capacity_bytes=server.allocator.total_frames")
        assert fp in _fingerprints(patched, rules=["ZL012"])


class TestBaselineParity:
    def test_checked_in_baseline_matches_pristine_tree(self, real_sources):
        baseline = load_baseline(Path("flow_baseline.json"))
        findings = analyze_sources(real_sources)
        new, _, burned = diff_against_baseline(findings, baseline)
        assert new == [], "new flow findings not in baseline:\n" + "\n".join(
            str(f) for f in new)
        assert burned == [], ("baseline entries no longer fire; ratchet "
                              "down with: python -m repro.flow src --regen")

    def test_baseline_has_no_zl009_debt(self, real_sources):
        # The tree is sim-pure today; ZL009 debt must never be baselined
        # silently.
        baseline = load_baseline(Path("flow_baseline.json"))
        assert not [fp for fp in baseline if fp.startswith("ZL009")]

    def test_tree_is_dimensionally_clean(self, real_sources):
        # ZomDim found no real unit bugs left standing, and none may be
        # baselined as debt: the energy model is dimension-sound.
        assert _fingerprints(real_sources,
                             rules=["ZL012", "ZL013", "ZL014"]) == set()
        baseline = load_baseline(Path("flow_baseline.json"))
        assert not [fp for fp in baseline
                    if fp.startswith(("ZL012", "ZL013", "ZL014"))]


class TestRuleTableCoherence:
    def test_flow_source_sets_match_lint(self):
        # ZL009 subsumes ZL001/ZL002: both layers must agree on what a
        # wall-clock read and a global random draw are.
        assert WALL_CLOCK_CALLS == _WALL_CLOCK_CALLS
        assert RANDOM_ALLOWED == _RANDOM_ALLOWED
