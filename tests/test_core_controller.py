"""The global memory controller protocol, over a real RPC fabric."""

import pytest

from repro.core.controller import GlobalMemoryController
from repro.core.protocol import BufferDescriptor, BufferKind, Method
from repro.errors import AllocationError, ControllerError
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import RpcClient, RpcServer
from repro.units import MiB

BUFF = 16 * MiB


class FakeAgent:
    """A scriptable remote-mem-mgr endpoint for controller tests."""

    def __init__(self, fabric, name, lendable=0):
        self.name = name
        self.node = fabric.add_node(name)
        self.rpc = RpcServer(self.node)
        self.rpc.register(Method.US_RECLAIM.value, self.us_reclaim)
        self.rpc.register(Method.AS_GET_FREE_MEM.value, self.as_get_free_mem)
        self.reclaimed = []
        self.lendable = lendable
        self._next_id = hash(name) % 1000 + 5000

    def us_reclaim(self, ids, epoch=None):
        self.reclaimed.extend(ids)
        return len(ids)

    def as_get_free_mem(self, epoch=None):
        out = []
        for _ in range(self.lendable):
            out.append(BufferDescriptor(
                buffer_id=self._next_id, host=self.name, offset=0,
                size_bytes=BUFF, kind=BufferKind.ACTIVE, rkey=self._next_id,
            ))
            self._next_id += 1
        self.lendable = 0
        return out


def _setup(agents=("a1", "a2"), lendable=0):
    fabric = Fabric()
    node = fabric.add_node("ctr")
    controller = GlobalMemoryController(node, buff_size=BUFF)
    fakes = {}
    for name in agents:
        fake = FakeAgent(fabric, name, lendable=lendable)
        controller.attach_agent(name, RpcClient(node, fake.rpc))
        fakes[name] = fake
    return fabric, controller, fakes


def _buffers(host, start_id, count, kind=BufferKind.ZOMBIE):
    return [BufferDescriptor(buffer_id=start_id + i, host=host, offset=0,
                             size_bytes=BUFF, kind=kind, rkey=start_id + i)
            for i in range(count)]


class TestGotoZombieAndWake:
    def test_lends_buffers(self):
        _, ctr, _ = _setup()
        count = ctr.gs_goto_zombie("z1", _buffers("z1", 10, 3))
        assert count == 3
        assert "z1" in ctr.zombie_hosts
        assert ctr.db.free_bytes() == 3 * BUFF

    def test_foreign_buffer_rejected(self):
        _, ctr, _ = _setup()
        with pytest.raises(ControllerError):
            ctr.gs_goto_zombie("z1", _buffers("other-host", 10, 1))

    def test_wake_relabels_buffers_active(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 2))
        ctr.gs_wake("z1")
        assert "z1" not in ctr.zombie_hosts
        assert all(b.kind is BufferKind.ACTIVE for b in ctr.db.by_host("z1"))

    def test_active_lending_relabelled_on_zombie_entry(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 1, kind=BufferKind.ZOMBIE))
        ctr.gs_wake("z1")
        ctr.gs_goto_zombie("z1", _buffers("z1", 20, 1))
        assert all(b.kind is BufferKind.ZOMBIE for b in ctr.db.by_host("z1"))


class TestAllocation:
    def test_ext_allocates_zombie_first(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 2))
        ctr.db.add(_buffers("a1", 50, 2, kind=BufferKind.ACTIVE)[0])
        granted = ctr.gs_alloc_ext("a2", 2 * BUFF)
        assert all(b.kind is BufferKind.ZOMBIE for b in granted)
        assert all(b.user == "a2" for b in granted)

    def test_ext_stripes_across_hosts(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 4))
        ctr.gs_goto_zombie("z2", _buffers("z2", 20, 4))
        granted = ctr.gs_alloc_ext("a1", 4 * BUFF)
        hosts = [b.host for b in granted]
        assert hosts.count("z1") == 2 and hosts.count("z2") == 2

    def test_ext_excludes_own_host(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("a1", _buffers("a1", 10, 2))
        ctr.gs_goto_zombie("z1", _buffers("z1", 20, 2))
        granted = ctr.gs_alloc_ext("a1", 2 * BUFF)
        assert all(b.host != "a1" for b in granted)

    def test_ext_grows_pool_from_active_servers(self):
        _, ctr, fakes = _setup(lendable=2)
        granted = ctr.gs_alloc_ext("a1", 2 * BUFF)
        assert len(granted) == 2
        assert all(b.host == "a2" for b in granted)  # a1 excluded

    def test_ext_revokes_swap_as_last_resort(self):
        _, ctr, fakes = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 2))
        swap = ctr.gs_alloc_swap("a2", 2 * BUFF)
        assert len(swap) == 2
        granted = ctr.gs_alloc_ext("a1", 2 * BUFF)
        assert len(granted) == 2
        assert sorted(fakes["a2"].reclaimed) == [b.buffer_id for b in swap]

    def test_ext_fails_when_rack_exhausted(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 1))
        with pytest.raises(AllocationError):
            ctr.gs_alloc_ext("a1", 5 * BUFF)

    def test_swap_is_best_effort(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 1))
        granted = ctr.gs_alloc_swap("a1", 5 * BUFF)
        assert len(granted) == 1  # fewer than asked, no exception

    def test_release_returns_buffers_to_pool(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 2))
        granted = ctr.gs_alloc_ext("a1", 2 * BUFF)
        ctr.gs_release("a1", [b.buffer_id for b in granted])
        assert ctr.db.free_bytes() == 2 * BUFF

    def test_release_foreign_buffer_rejected(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 1))
        granted = ctr.gs_alloc_ext("a1", BUFF)
        with pytest.raises(ControllerError):
            ctr.gs_release("a2", [granted[0].buffer_id])


class TestReclaim:
    def test_unallocated_buffers_reclaimed_first(self):
        _, ctr, fakes = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 3))
        ctr.gs_alloc_ext("a1", BUFF)  # allocates buffer 10
        ids = ctr.gs_reclaim("z1", 2)
        assert 10 not in ids  # free ones went first
        assert fakes["a1"].reclaimed == []

    def test_allocated_buffers_revoked_when_needed(self):
        _, ctr, fakes = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 2))
        granted = ctr.gs_alloc_ext("a1", 2 * BUFF)
        ids = ctr.gs_reclaim("z1", 2)
        assert sorted(ids) == [10, 11]
        assert sorted(fakes["a1"].reclaimed) == sorted(
            b.buffer_id for b in granted
        )

    def test_over_reclaim_rejected(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 1))
        with pytest.raises(ControllerError):
            ctr.gs_reclaim("z1", 5)


class TestLruZombie:
    def test_picks_least_allocated(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 2))
        ctr.gs_goto_zombie("z2", _buffers("z2", 20, 2))
        # allocate both of z1's buffers (z2 still has one free after one alloc)
        for b in ctr.db.by_host("z1"):
            ctr.db.assign(b.buffer_id, "a1")
        assert ctr.gs_get_lru_zombie() == "z2"

    def test_none_without_zombies(self):
        _, ctr, _ = _setup()
        assert ctr.gs_get_lru_zombie() is None


class TestMirroring:
    def test_mutations_forwarded(self):
        _, ctr, _ = _setup()
        mirrored = []
        ctr.mirror = lambda op, args, seq: mirrored.append(op)
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 1))
        ctr.gs_alloc_ext("a1", BUFF)
        assert "zombie_add" in mirrored
        assert "add" in mirrored
        assert "assign" in mirrored

    def test_heartbeat(self):
        _, ctr, _ = _setup()
        assert ctr.heartbeat() == "alive"
        assert ctr.heartbeats_sent == 1

    def test_pool_summary(self):
        _, ctr, _ = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 2))
        summary = ctr.pool_summary()
        assert summary["buffers"] == 2
        assert summary["zombie_hosts"] == 1


class TestRevokeAtomicity:
    def _allocated_pair(self):
        """Two users, one buffer each, all served by zombie z1."""
        fabric, ctr, fakes = _setup()
        ctr.gs_goto_zombie("z1", _buffers("z1", 10, 4))
        ctr.gs_alloc_swap("a1", BUFF)
        ctr.gs_alloc_swap("a2", BUFF)
        return fabric, ctr, fakes

    def test_missing_channel_validated_before_any_send(self):
        _, ctr, fakes = self._allocated_pair()
        ctr.agent_clients.pop("a2")
        with pytest.raises(ControllerError):
            ctr.gs_reclaim("z1", 4)
        # a1's channel was fine, but nothing was revoked from it either:
        # the batch failed atomically, before the first US_reclaim.
        assert fakes["a1"].reclaimed == []
        assert len(ctr.db.by_host("z1")) == 4  # state untouched

    def test_midbatch_rpc_failure_logs_compensating_event(self):
        from repro.core.events import EventKind
        from repro.errors import RpcError

        fabric, ctr, fakes = self._allocated_pair()
        fabric.partition("a2")  # appears *after* channel validation
        with pytest.raises(ControllerError):
            ctr.gs_reclaim("z1", 4)
        # a1 already dropped its lease; the event records exactly that,
        # so a journal consumer can reconcile the half-applied batch.
        assert len(fakes["a1"].reclaimed) == 1
        failures = ctr.events.of_kind(EventKind.REVOKE_FAILED)
        assert len(failures) == 1
        assert failures[0].detail["completed_users"] == ["a1"]
        assert failures[0].detail["buffers"]
