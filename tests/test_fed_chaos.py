"""ZomFed under fire: donor failover plus adversarial inter-rack links.

Two legs, mirroring ``tests/test_message_chaos.py`` for the cross-rack
plane:

- **failover**: killing a borrowed-from rack's primary must leave every
  loan intact on the promoted secondary (the journal mirrors the grant),
  re-attachable by the lending plane, recallable under the new fencing
  epoch, and the deposed primary fenced out of the revocation channel;
- **message faults**: ``REPLY_LOSS``/``DUPLICATE`` injected on the
  inter-rack links must leave the borrow/return/recall storm's final
  state fingerprint-identical to the fault-free run — the ``FED_*``
  verbs are ``dedup_required``, so a lost reply or duplicated request
  can never double-lend or double-free.

CI sweeps seeds via ``ZOMNET_CHAOS_SEEDS`` (same contract as the
intra-rack chaos matrix); any failure replays locally with the same
value.
"""

import os

import pytest

from repro.core.protocol import Method
from repro.errors import AllocationError, FencingError
from repro.fed import Federation
from repro.rdma.fabric import DUPLICATE, REPLY_LOSS, LinkFaults
from repro.units import MiB

BUFF = 16 * MiB


def _seeds():
    """CI's chaos-matrix job sweeps seeds via ZOMNET_CHAOS_SEEDS."""
    raw = os.environ.get("ZOMNET_CHAOS_SEEDS", "7")
    return tuple(int(s) for s in raw.split(",") if s.strip())


def _build(seed, install_faults=None):
    fed = Federation(n_racks=2, hosts_per_rack=3, memory_bytes=512 * MiB,
                     buff_size=BUFF, rng_seed=seed)
    if install_faults is not None:
        install_faults(fed.fabric.message_faults)
    for host in ("rack1/h2", "rack1/h3", "rack2/h2"):
        fed.make_zombie(host)
    return fed


def _drain_until_borrow(fed, tenant="rack2/h1", rounds=512):
    for _ in range(rounds):
        if fed.gateway.lending_triggers > 0:
            break
        fed.gateway.alloc_ext(tenant, 4 * BUFF)
    assert fed.lending.borrows > 0, "lending never engaged"


def _lending_storm(fed):
    """Borrow repeatedly, proactively return half, then recall the rest
    by waking the donor hosts — every cross-rack interaction class, with
    enough cross-rack messages for a probabilistic plan to really bite."""
    _drain_until_borrow(fed)
    for _ in range(12):
        try:
            fed.gateway.alloc_ext("rack2/h1", 4 * BUFF)
        except AllocationError:
            break  # the whole federation went dry — that is the storm's end
    loan_ids = sorted(fed.lending.loans)
    fed.lending.return_loans("rack2", "rack1",
                             loan_ids[:len(loan_ids) // 2])
    fed.wake("rack1/h2", reclaim_bytes=512 * MiB)
    fed.wake("rack1/h3", reclaim_bytes=512 * MiB)
    fed.lending.pump_recalls()


def _fingerprint(fed):
    """Fault-independent final state.  Globally counted ids (buffer ids,
    request ids) and simulated timestamps are deliberately excluded —
    a second federation in the same process starts further along the id
    streams without changing what the protocol agreed on."""
    racks = tuple(
        (name,
         tuple(sorted(rack.controller.pool_summary().items())),
         rack.controller.epoch,
         len(rack.controller.db.free_buffers()))
        for name, rack in sorted(fed.racks.items()))
    loans = tuple(sorted((loan.donor, loan.borrower)
                         for loan in fed.lending.loans.values()))
    counters = (fed.lending.borrows, fed.lending.returns,
                fed.lending.recalls, len(fed.lending.pending_recalls))
    return racks, loans, counters


class TestDonorFailover:
    def test_loans_survive_and_rehome_to_the_promoted_secondary(self):
        fed = _build(7)
        _drain_until_borrow(fed)
        donor_rack = fed.racks["rack1"]
        deposed = donor_rack.controller
        old_epoch = deposed.epoch
        loan_ids = sorted(fed.lending.loans)

        donor_rack.kill_controller()
        fed.engine.run(until=10.0)
        promoted = donor_rack.controller
        assert promoted is not deposed
        assert promoted.epoch == old_epoch + 1
        assert promoted.recovery is donor_rack.recovery

        # The grants were journaled, so the mirrored database on the
        # promoted secondary still carries every outstanding loan.
        for buffer_id in loan_ids:
            assert buffer_id in promoted.db
            assert promoted.db.get(buffer_id).allocated

        # A fresh borrow re-attaches the lending agent under the new
        # primary and keeps granting from the re-homed pool.
        more = fed.lending.borrow("rack2", "rack1", 2)
        assert more == 2
        agent = fed.lending.agents[("rack2", "rack1")]
        assert agent.node.name in promoted.agent_clients

        # Once the agent has learnt the new epoch, the deposed primary
        # is fenced out of the revocation channel it used to own.
        promoted._agent_call(agent.node.name, Method.HEARTBEAT)
        assert agent.donor_epoch == promoted.epoch
        with pytest.raises(FencingError):
            deposed._agent_call(agent.node.name, Method.HEARTBEAT)

        # And the loans stay fully recallable through the new primary.
        fed.lending.return_loans("rack2", "rack1")
        assert fed.lending.loans == {}
        assert fed.lending.pending_recalls == []

    def test_donor_recall_still_flows_after_failover(self):
        fed = _build(11)
        _drain_until_borrow(fed)
        donor_rack = fed.racks["rack1"]
        donor_rack.kill_controller()
        fed.engine.run(until=10.0)
        # Waking the donor hosts revokes the loans through the promoted
        # primary — the borrower side drops them without manual help.
        fed.wake("rack1/h2", reclaim_bytes=512 * MiB)
        fed.wake("rack1/h3", reclaim_bytes=512 * MiB)
        fed.lending.pump_recalls()
        assert fed.lending.loans_from("rack1") == []
        assert fed.lending.recalls > 0
        assert fed.lending.pending_recalls == []


class TestInterRackMessageFaults:
    @pytest.mark.parametrize("seed", _seeds())
    def test_probabilistic_faults_keep_state_identical(self, seed):
        clean = _build(seed)
        _lending_storm(clean)
        baseline = _fingerprint(clean)

        # One scripted loss on top of the probabilistic plan: whatever
        # the seed's draw stream does, at least one fault provably fires.
        def install(inj):
            inj.set_rack_link("*", "*",
                              LinkFaults(reply_loss=0.08, duplicate=0.12))
            inj.script_rack("*", "*", REPLY_LOSS, method="FED_borrow")

        faulty = _build(seed, install_faults=install)
        _lending_storm(faulty)
        assert _fingerprint(faulty) == baseline

        injected = faulty.fabric.message_faults.injected
        assert injected[REPLY_LOSS] + injected[DUPLICATE] >= 1, (
            "the inter-rack fault plan never fired — the storm has no "
            "cross-rack traffic to attack?")

    @pytest.mark.parametrize("kind", (REPLY_LOSS, DUPLICATE))
    @pytest.mark.parametrize("verb", ("FED_borrow", "FED_return"))
    def test_scripted_fault_on_each_fed_verb(self, kind, verb):
        clean = _build(7)
        _lending_storm(clean)
        baseline = _fingerprint(clean)

        fed = _build(7, install_faults=lambda inj: inj.script_rack(
            "*", "*", kind, method=verb))
        _lending_storm(fed)
        assert _fingerprint(fed) == baseline
        fired = sum(fed.fabric.message_faults.injected.values())
        assert fired >= 1, f"scripted {kind} on {verb!r} never fired"
