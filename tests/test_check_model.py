"""ZomCheck model tests: bounds, action enumeration, protocol semantics."""

import pytest

from repro.check import RPC_ACTION_VERBS, ProtocolModel
from repro.check.model import BOUNDS, MUTANTS, S0, SZ, Bounds
from repro.check.trace import run_trace


def _step(model, state, name):
    """Apply one named action; returns (new_state, step_violations)."""
    action = model.action_by_name(state, name)
    assert action is not None, f"{name} not enabled"
    new_state, violations = action.apply()
    return (new_state if new_state is not None else state), violations


def _walk(model, names):
    state = model.initial_state()
    for name in names:
        state, violations = _step(model, state, name)
        assert not violations, (name, violations)
    return state


class TestBounds:
    def test_catalogue(self):
        assert set(BOUNDS) == {"tiny", "small", "medium", "fed"}
        for bounds in BOUNDS.values():
            assert isinstance(bounds, Bounds)
            assert bounds.hosts >= 2
            assert bounds.buffers_per_host >= 1
        assert BOUNDS["fed"].racks == 2

    def test_rack_mapping(self):
        fed = BOUNDS["fed"]
        assert [fed.rack_of(h) for h in range(fed.hosts)] == [0, 0, 1]
        assert fed.rack_name(0) == "r1"
        assert fed.rack_name(2) == "r2"
        single = BOUNDS["small"]
        assert {single.rack_of(h) for h in range(single.hosts)} == {0}

    def test_buffer_ownership_roundtrip(self):
        bounds = BOUNDS["small"]
        for host in range(bounds.hosts):
            for bid in bounds.own_bids(host):
                assert bounds.owner_of(bid) == host

    def test_host_names_are_stable(self):
        assert BOUNDS["small"].host_names() == ("h1", "h2", "h3")


class TestActionEnumeration:
    def test_initial_state_is_clean_and_hashable(self):
        model = ProtocolModel(BOUNDS["tiny"])
        state = model.initial_state()
        hash(state)
        assert model.state_violations(state) == []

    def test_enumeration_is_sorted_and_deterministic(self):
        model = ProtocolModel(BOUNDS["tiny"])
        state = model.initial_state()
        first = [a.name for a in model.enabled_actions(state)]
        second = [a.name for a in model.enabled_actions(state)]
        assert first == second == sorted(first)

    def test_verb_contract_matches_the_literal(self):
        # action_verbs() is the dynamic union; RPC_ACTION_VERBS is the
        # static tuple ZL006 parses.  They must never drift apart.
        model = ProtocolModel(BOUNDS["small"])
        assert model.action_verbs() == set(RPC_ACTION_VERBS)
        assert RPC_ACTION_VERBS == tuple(sorted(RPC_ACTION_VERBS))

    def test_readonly_probes_are_enumerated(self):
        model = ProtocolModel(BOUNDS["tiny"])
        actions = {a.name: a for a in
                   model.enabled_actions(model.initial_state())}
        assert actions["heartbeat"].readonly
        # GS_get_lru_zombie needs a zombie to exist.
        state = _walk(model, ["GS_goto_zombie(h1)"])
        names = {a.name for a in model.enabled_actions(state)}
        assert "GS_get_lru_zombie" in names


class TestProtocolSemantics:
    def test_goto_zombie_then_wake(self):
        model = ProtocolModel(BOUNDS["tiny"])
        state = _walk(model, ["GS_goto_zombie(h1)"])
        assert state.power[0] == SZ
        names = {a.name for a in model.enabled_actions(state)}
        assert "GS_wake(h1)" in names
        assert "GS_goto_zombie(h1)" not in names
        state = _walk(model, ["GS_goto_zombie(h1)", "GS_wake(h1)"])
        assert state.power[0] == S0

    def test_alloc_never_uses_the_requesting_host(self):
        model = ProtocolModel(BOUNDS["small"])
        state = _walk(model, ["GS_alloc_ext(h1)"])
        bounds = model.bounds
        for (bid, host, kind, user, purpose) in state.db:
            if user == 0:   # h1's allocation
                assert bounds.owner_of(bid) != 0

    def test_promote_bumps_the_epoch(self):
        model = ProtocolModel(BOUNDS["tiny"])
        state = _walk(model, ["kill_controller", "promote"])
        assert state.promoted
        assert state.epoch == 2

    def test_skip_epoch_bump_mutant_does_not(self):
        model = ProtocolModel(BOUNDS["tiny"], mutant="skip-epoch-bump")
        state = _walk(model, ["kill_controller", "promote"])
        assert state.promoted
        assert state.epoch == 1

    def test_stale_mirror_is_fenced_on_the_clean_model(self):
        model = ProtocolModel(BOUNDS["tiny"])
        state = _walk(model, ["kill_controller", "promote",
                              "stale_mirror_op"])
        assert state.deposed_fenced
        assert not state.tainted

    def test_crash_heal_reboots_to_s0(self):
        model = ProtocolModel(BOUNDS["tiny"])
        state = _walk(model, ["GS_goto_zombie(h1)", "crash(h1)", "heal(h1)"])
        assert state.power[0] == S0
        assert not state.crashed[0]

    def test_unknown_action_name_is_none(self):
        model = ProtocolModel(BOUNDS["tiny"])
        assert model.action_by_name(model.initial_state(),
                                    "GS_alloc_ext(h9)") is None


class TestDuplicateDelivery:
    def test_dup_classes_mirror_the_protocol_contract(self):
        # model._DUP_CLASSES is a literal copy of the non-read_only slice
        # of core.protocol.VERB_IDEMPOTENCY, restricted to the verbs that
        # name model actions.  This is the drift test that copy promises.
        from repro.check.model import _DUP_CLASSES
        from repro.core.protocol import READ_ONLY, VERB_IDEMPOTENCY

        model = ProtocolModel(BOUNDS["tiny"])
        action_kinds = {a.kind for a in
                        model.enabled_actions(model.initial_state())}
        # Every dup-classed kind is a protocol verb with the same class.
        for kind, cls in _DUP_CLASSES.items():
            assert VERB_IDEMPOTENCY.get(kind) == cls, kind
        # No RPC-verb action kind with mutable semantics is missing.
        for kind in action_kinds:
            declared = VERB_IDEMPOTENCY.get(kind)
            if declared is not None and declared != READ_ONLY:
                assert kind in _DUP_CLASSES, kind

    def test_dup_actions_are_enumerated(self):
        model = ProtocolModel(BOUNDS["tiny"])
        names = {a.name for a in
                 model.enabled_actions(model.initial_state())}
        assert "dup_GS_goto_zombie(h1)" in names
        assert "lose_message" in names
        # Read-only probes re-execute for free: no dup variant.
        assert not any(n.startswith("dup_heartbeat") for n in names)

    def test_dedup_absorbs_the_duplicate_on_the_clean_model(self):
        model = ProtocolModel(BOUNDS["tiny"])
        single = _walk(model, ["GS_goto_zombie(h1)"])
        doubled = _walk(model, ["dup_GS_goto_zombie(h1)"])
        assert doubled == single

    def test_no_dedup_mutant_flags_duplicate_execution(self):
        model = ProtocolModel(BOUNDS["tiny"], mutant="no-dedup")
        state, violations = _step(model, model.initial_state(),
                                  "dup_GS_goto_zombie(h1)")
        assert any(v.kind == "duplicate-execution" for v in violations)

    def test_idempotent_dup_converges_without_violation(self):
        model = ProtocolModel(BOUNDS["tiny"])
        base = _walk(model, ["GS_goto_zombie(h1)"])
        single, _ = _step(model, base, "GS_wake(h1)")
        doubled, violations = _step(model, base, "dup_GS_wake(h1)")
        assert not violations
        assert doubled == single

    def test_lose_message_is_a_stutter(self):
        model = ProtocolModel(BOUNDS["tiny"])
        state = model.initial_state()
        lost, violations = _step(model, state, "lose_message")
        assert not violations
        assert lost == state


class TestMutantRegistry:
    def test_model_and_concrete_mutants_agree(self):
        from repro.check import mutants
        assert set(MUTANTS) == set(mutants._REGISTRY)

    def test_unknown_mutant_rejected(self):
        from repro.check import mutants
        with pytest.raises(ValueError):
            mutants.mutant("off-by-one-everywhere")
        with pytest.raises(ValueError):
            ProtocolModel(BOUNDS["tiny"], mutant="no-such-bug")

    def test_clean_model_replays_mutant_traces_without_violation(self):
        # The counterexamples only exist because of the seeded bug.
        traces = {
            "skip-epoch-bump": ["kill_controller", "promote",
                                "stale_mirror_op"],
            "double-lend": ["GS_alloc_ext(h1)", "GS_transfer(h1,h2)",
                            "GS_alloc_ext(h1)"],
        }
        clean = ProtocolModel(BOUNDS["tiny"])
        for names in traces.values():
            run = run_trace(clean, names)
            assert not run.violations
