"""ZomFed: ring placement, directory, gateway routing and lending.

The acceptance bar from the issue: a 4-rack federation serves the full
15-verb intra-rack protocol through the same machinery each rack always
had, and cross-rack lending engages exactly when one rack's zombie pool
is exhausted — with the borrow visible in the J/hour energy accounting.
"""

import pytest

from repro.check.model import RPC_ACTION_VERBS
from repro.core.protocol import Method
from repro.errors import (AllocationError, ConfigurationError, FencingError)
from repro.fed import Federation
from repro.fed.ring import ConsistentHashRing
from repro.hypervisor.vm import VmSpec
from repro.obs import Telemetry
from repro.obs.tracing import span_forest_errors
from repro.units import GiB, MiB

BUFF = 16 * MiB


def _small_fed(n_racks=2, **kwargs):
    kwargs.setdefault("hosts_per_rack", 3)
    kwargs.setdefault("memory_bytes", 512 * MiB)
    kwargs.setdefault("buff_size", BUFF)
    kwargs.setdefault("rng_seed", 0)
    return Federation(n_racks=n_racks, **kwargs)


def _drain_until_borrow(fed, tenant, rounds=512):
    """Allocate through the gateway until cross-rack lending engages."""
    for _ in range(rounds):
        if fed.gateway.lending_triggers > 0:
            break
        fed.gateway.alloc_ext(tenant, 4 * BUFF)
    assert fed.lending.borrows > 0, "lending never engaged"


class TestRing:
    def test_homes_are_stable_across_instances(self):
        keys = [f"tenant-{i}" for i in range(50)]
        a = ConsistentHashRing(["rack1", "rack2", "rack3"])
        b = ConsistentHashRing(["rack3", "rack1", "rack2"])
        assert [a.home(k) for k in keys] == [b.home(k) for k in keys]

    def test_load_split_touches_every_rack(self):
        ring = ConsistentHashRing([f"rack{i}" for i in range(1, 5)])
        split = ring.load_split(f"tenant-{i}" for i in range(400))
        assert set(split) == {"rack1", "rack2", "rack3", "rack4"}
        assert all(count > 0 for count in split.values())
        assert sum(split.values()) == 400

    def test_preference_starts_at_home_and_is_distinct(self):
        ring = ConsistentHashRing(["rack1", "rack2", "rack3"])
        for key in ("a", "b", "c", "rack2/h1"):
            order = ring.preference(key)
            assert order[0] == ring.home(key)
            assert sorted(order) == ["rack1", "rack2", "rack3"]

    def test_removing_a_rack_only_rehomes_its_keys(self):
        ring = ConsistentHashRing(["rack1", "rack2", "rack3"])
        keys = [f"tenant-{i}" for i in range(200)]
        before = {k: ring.preference(k, n=2) for k in keys}
        ring.remove_rack("rack2")
        for key in keys:
            home = ring.home(key)
            if before[key][0] == "rack2":
                # Re-homed to the next distinct rack clockwise — the
                # failover order every caller derives independently.
                assert home == before[key][1]
            else:
                assert home == before[key][0]

    def test_configuration_errors(self):
        ring = ConsistentHashRing(["rack1"])
        with pytest.raises(ConfigurationError):
            ring.add_rack("rack1")
        with pytest.raises(ConfigurationError):
            ring.remove_rack("rack9")
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(vnodes=0)
        with pytest.raises(ConfigurationError):
            ConsistentHashRing().home("anyone")


class TestFederationAssembly:
    def test_racks_share_engine_and_fabric(self):
        fed = _small_fed()
        r1, r2 = fed.racks["rack1"], fed.racks["rack2"]
        assert r1.engine is fed.engine and r2.engine is fed.engine
        assert r1.fabric is fed.fabric and r2.fabric is fed.fabric
        assert fed.rack_of_server("rack1/h2") == "rack1"
        assert fed.rack_of_server("rack2/h3") == "rack2"

    def test_gateway_node_is_rack_less(self):
        fed = _small_fed()
        assert fed.fabric.rack_of("fed/gateway") is None

    def test_bad_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            Federation(n_racks=0)
        with pytest.raises(ConfigurationError):
            Federation(n_racks=1, hosts_per_rack=0)
        with pytest.raises(ConfigurationError):
            _small_fed().rack("rack9")
        with pytest.raises(ConfigurationError):
            _small_fed().rack_of_server("fed/gateway")


class TestDirectory:
    def test_refresh_snapshots_zombie_pools(self):
        fed = _small_fed()
        fed.make_zombie("rack1/h2")
        fed.directory.refresh()
        d1, d2 = fed.directory.digests["rack1"], fed.directory.digests["rack2"]
        assert d1.alive and d2.alive
        assert d1.zombie_hosts == 1 and d2.zombie_hosts == 0
        # The Sz host donates its free memory (minus what the platform
        # keeps resident) as whole buffers.
        assert 0 < d1.free_zombie_buffers <= (512 * MiB) // BUFF
        assert d1.free_zombie_bytes == d1.free_zombie_buffers * BUFF
        assert d2.free_zombie_buffers == 0

    def test_dead_rack_is_skipped_until_revived(self):
        fed = _small_fed(n_racks=3)
        for rack in fed.rack_names:
            fed.make_zombie(f"{rack}/h2")
        fed.racks["rack2"].kill_controller()
        fed.directory.refresh()
        assert not fed.directory.alive("rack2")
        assert "rack2" not in fed.directory.donors()
        # The secondary promotes on the shared clock; the next refresh
        # re-resolves the heartbeat channel to the new primary.
        fed.engine.run(until=10.0)
        fed.directory.refresh()
        assert fed.directory.alive("rack2")
        assert "rack2" in fed.directory.donors()

    def test_donors_sorted_fullest_first_with_exclude(self):
        fed = _small_fed(n_racks=3)
        fed.make_zombie("rack1/h2")
        fed.make_zombie("rack2/h2")
        fed.make_zombie("rack2/h3")
        fed.directory.refresh()
        assert fed.directory.donors() == ["rack2", "rack1"]
        assert fed.directory.donors(exclude="rack2") == ["rack1"]

    def test_mark_dry_holds_until_refresh(self):
        fed = _small_fed()
        fed.make_zombie("rack1/h2")
        fed.directory.refresh()
        fed.directory.mark_dry("rack1")
        assert fed.directory.donors() == []
        fed.directory.refresh()
        assert fed.directory.donors() == ["rack1"]


class TestGateway:
    def test_routes_to_the_home_rack(self):
        fed = _small_fed(telemetry=Telemetry(enabled=True))
        tenant = "rack2/h1"
        home = fed.gateway.home_of(tenant)
        fed.make_zombie(f"{home}/h2")
        before = fed.racks[home].controller.pool_summary()["free_bytes"]
        granted = fed.gateway.alloc_ext(tenant, 2 * BUFF)
        assert len(granted) == 2
        after = fed.racks[home].controller.pool_summary()["free_bytes"]
        assert before - after == 2 * BUFF
        assert fed.gateway.routed >= 1
        labels = fed.telemetry.registry.labels_for("fed_routed_total")
        assert {lbl["rack"] for lbl in labels} == {home}

    def test_remote_tenant_gets_a_revocation_channel(self):
        fed = _small_fed()
        tenant = "rack2/h1"
        home = fed.gateway.home_of(tenant)
        fed.make_zombie(f"{home}/h2")
        fed.gateway.alloc_ext(tenant, BUFF)
        assert tenant in fed.racks[home].controller.agent_clients

    def test_cross_rack_transfer_is_rejected(self):
        fed = _small_fed(n_racks=3)
        homes = {}
        for rack in fed.rack_names:
            for j in range(1, 4):
                name = f"{rack}/h{j}"
                homes.setdefault(fed.gateway.home_of(name), name)
        assert len(homes) >= 2, "need tenants homed on different racks"
        (t1, t2) = list(homes.values())[:2]
        with pytest.raises(ConfigurationError):
            fed.gateway.transfer(t1, t2, [1])

    def test_federation_wide_dry_allocation_surfaces(self):
        fed = _small_fed()
        # No zombies anywhere beyond intra-rack growth: exhaust it.
        tenant = "rack1/h1"
        with pytest.raises(AllocationError):
            for _ in range(512):
                fed.gateway.alloc_ext(tenant, 4 * BUFF)
        assert fed.gateway.borrow_failures >= 1


class TestLending:
    def _lend_pair(self):
        fed = _small_fed(telemetry=Telemetry(enabled=True))
        fed.make_zombie("rack1/h2")
        fed.make_zombie("rack1/h3")
        fed.make_zombie("rack2/h2")
        _drain_until_borrow(fed, "rack2/h1")
        return fed

    def test_borrow_imports_into_the_borrower_pool(self):
        fed = self._lend_pair()
        loans = fed.lending.loans_from("rack1")
        assert loans and all(l.borrower == "rack2" for l in loans)
        borrower_db = fed.racks["rack2"].controller.db
        for loan in loans:
            assert loan.buffer_id in borrower_db
            # The loaned record still points at the donor's serving host.
            host = borrower_db.get(loan.buffer_id).host
            assert fed.fabric.rack_of(host) == "rack1"

    def test_return_restores_the_donor_pool(self):
        fed = self._lend_pair()
        loan_ids = sorted(fed.lending.loans)
        donor_free = fed.racks["rack1"].controller.pool_summary()["free_bytes"]
        fed.lending.return_loans("rack2", "rack1")
        assert fed.lending.loans == {}
        assert fed.lending.returns == len(loan_ids)
        regained = (fed.racks["rack1"].controller.pool_summary()["free_bytes"]
                    - donor_free)
        assert regained == len(loan_ids) * BUFF
        borrower_db = fed.racks["rack2"].controller.db
        assert all(buffer_id not in borrower_db for buffer_id in loan_ids)
        labels = fed.telemetry.registry.labels_for("fed_returns_total")
        assert {(lbl["src_rack"], lbl["dst_rack"])
                for lbl in labels} == {("rack2", "rack1")}

    def test_waking_donor_hosts_recalls_the_loans(self):
        fed = self._lend_pair()
        assert fed.lending.loans
        fed.wake("rack1/h2", reclaim_bytes=512 * MiB)
        fed.wake("rack1/h3", reclaim_bytes=512 * MiB)
        assert fed.lending.loans_from("rack1") == []
        assert fed.lending.recalls > 0
        assert fed.lending.pending_recalls == []

    def test_stale_donor_epoch_is_fenced(self):
        fed = self._lend_pair()
        agent = fed.lending.agents[("rack2", "rack1")]
        assert agent.heartbeat(epoch=agent.donor_epoch + 1) == "alive"
        with pytest.raises(FencingError):
            agent.us_reclaim([], epoch=agent.donor_epoch - 1)

    def test_cross_rack_traffic_is_priced(self):
        fed = self._lend_pair()
        assert fed.fabric.cross_rack_ops > 0
        assert fed.fabric.cross_rack_joules > 0
        stats = fed.stats()
        assert stats["borrows"] == fed.lending.borrows
        assert stats["cross_rack_joules"] > 0
        labels = fed.telemetry.registry.labels_for(
            "fed_cross_rack_joules_total")
        assert labels and all("src_rack" in lbl and "dst_rack" in lbl
                              for lbl in labels)


class TestFourRackAcceptance:
    """The issue's acceptance scenario, end to end."""

    @pytest.fixture(scope="class")
    def fed(self):
        tel = Telemetry(enabled=True)
        fed = Federation(n_racks=4, hosts_per_rack=3,
                         memory_bytes=512 * MiB, buff_size=BUFF,
                         rng_seed=0, telemetry=tel)

        # Every intra-rack verb, on rack1, through its own controller
        # pair — the federation adds glue, it does not replace the rack.
        rack1 = fed.racks["rack1"]
        rack1.make_zombie("rack1/h3")                     # GS_goto_zombie
        vm1 = rack1.create_vm("rack1/h1", VmSpec("vm1", 128 * MiB),
                              local_fraction=0.5)         # GS_alloc_ext
        hv = rack1.server("rack1/h1").hypervisor
        for ppn in range(vm1.spec.total_pages):
            hv.access(vm1, ppn)
        manager = rack1.server("rack1/h1").manager
        manager.request_swap(32 * MiB)                    # GS_alloc_swap
        manager.controller.call(Method.GS_GET_LRU_ZOMBIE.value)
        rack1.wake("rack1/h3", reclaim_bytes=512 * MiB)   # GS_wake/reclaim
        rack1.create_vm("rack1/h1", VmSpec("vm2", 64 * MiB),
                        local_fraction=0.5)
        rack1.migrate_vm("vm2", "rack1/h1", "rack1/h2")   # GS_transfer
        rack1.destroy_vm("rack1/h1", "vm1")               # GS_release
        rack1.crash_server("rack1/h3")
        rack1.server("rack1/h2").manager.report_host_failure("rack1/h3")
        rack1.heal_server("rack1/h3")
        rack1.start_host_monitoring(probe_period_s=0.5)
        fed.engine.run(until=3.0)                         # heartbeat/resync

        # Exhaust one rack's pool through the gateway: lending engages.
        for rack in ("rack2", "rack3", "rack4"):
            fed.make_zombie(f"{rack}/h2")
            fed.make_zombie(f"{rack}/h3")
        _drain_until_borrow(fed, "rack2/h1")
        # Give some loans back so FED_return completes a traced call too.
        pairs = sorted({(l.borrower, l.donor)
                        for l in fed.lending.loans.values()})
        for borrower, donor in pairs:
            fed.lending.return_loans(borrower, donor)
        return fed

    def test_all_17_verbs_complete_traced_calls(self, fed):
        seen = {labels.get("verb") for labels
                in fed.telemetry.registry.labels_for("rpc_call_seconds")}
        missing = sorted(set(RPC_ACTION_VERBS) - seen)
        assert not missing, f"verbs never served: {missing}"

    def test_lending_engaged_and_returned(self, fed):
        assert fed.gateway.lending_triggers > 0
        assert fed.lending.borrows > 0
        assert fed.lending.returns == fed.lending.borrows
        assert fed.lending.loans == {}

    def test_cross_rack_energy_charged(self, fed):
        assert fed.fabric.cross_rack_joules > 0
        assert fed.stats()["cross_rack_ops"] > 0

    def test_span_forest_stays_connected(self, fed):
        tracer = fed.telemetry.tracer
        assert span_forest_errors(tracer.finished()) == []
        assert tracer._stack == []


class TestDcFederationBackend:
    def test_aggregate_and_federation_backends(self):
        from repro.dc.energy_sim import simulate_energy
        from repro.energy.profiles import HP_PROFILE
        from repro.traces.google import generate_trace
        from repro.traces.schema import TraceConfig

        tasks = generate_trace(TraceConfig(n_servers=20, duration_days=0.25,
                                           seed=3))
        base = simulate_energy(tasks, 20, HP_PROFILE, "ZombieStack")
        agg = simulate_energy(tasks, 20, HP_PROFILE, "ZombieStack",
                              backend="aggregate")
        assert agg.joules == base.joules
        live = simulate_energy(tasks, 20, HP_PROFILE, "ZombieStack",
                               backend="federation")
        # The live fleet can only add inter-rack surcharge on top of the
        # closed-form integral — never subtract energy.
        assert live.joules >= agg.joules
        assert live.baseline_joules == agg.baseline_joules

    def test_federation_backend_guards(self):
        from repro.dc.energy_sim import simulate_energy
        from repro.energy.profiles import HP_PROFILE
        from repro.traces.google import generate_trace
        from repro.traces.schema import TraceConfig

        tasks = generate_trace(TraceConfig(n_servers=10, duration_days=0.1,
                                           seed=3))
        with pytest.raises(ConfigurationError):
            simulate_energy(tasks, 10, HP_PROFILE, "Neat",
                            backend="federation")
        with pytest.raises(ConfigurationError):
            simulate_energy(tasks, 10, HP_PROFILE, "ZombieStack",
                            backend="quantum")

    def test_build_fleet_guards(self):
        from repro.dc.fleet import FederationFleet, build_fleet
        with pytest.raises(ConfigurationError):
            build_fleet(0)
        with pytest.raises(ConfigurationError):
            FederationFleet(hosts_per_rack=1)
