"""Device D-states, DRAM refresh modes, the NIC DMA path."""

import pytest

from repro.acpi.devices import (Cpu, Device, DeviceState, InfinibandCard,
                                MemoryBank, MemoryBankDevice,
                                PcieRootComplex, StorageDevice)
from repro.errors import DeviceStateError


class TestDeviceStates:
    def test_d0_is_operational(self):
        assert DeviceState.D0.operational
        assert not DeviceState.D3_HOT.operational

    def test_power_by_state(self):
        dev = Device("d", "periph", active_watts=10.0, idle_watts=4.0,
                     d3hot_watts=1.0)
        assert dev.power_draw() == 4.0  # D0 idle
        dev.busy = True
        assert dev.power_draw() == 10.0
        dev.set_state(DeviceState.D3_HOT)
        assert dev.power_draw() == 1.0
        dev.set_state(DeviceState.D3_COLD)
        assert dev.power_draw() == 0.0

    def test_leaving_d0_clears_busy(self):
        dev = Device("d", "periph", 10.0)
        dev.busy = True
        dev.set_state(DeviceState.D3_HOT)
        assert not dev.busy

    def test_require_operational(self):
        dev = Device("d", "periph", 10.0)
        dev.set_state(DeviceState.D3_COLD)
        with pytest.raises(DeviceStateError):
            dev.require_operational("work")


class TestMemoryBank:
    def test_active_idle_serves(self):
        bank = MemoryBankDevice()
        assert bank.serves_accesses
        bank.access()  # must not raise

    def test_self_refresh_retains_but_does_not_serve(self):
        bank = MemoryBankDevice()
        bank.enter_self_refresh()
        assert bank.state.operational  # still powered
        assert not bank.serves_accesses
        with pytest.raises(DeviceStateError):
            bank.access()

    def test_self_refresh_draws_less(self):
        bank = MemoryBankDevice()
        idle = bank.power_draw()
        bank.enter_self_refresh()
        assert bank.power_draw() < idle

    def test_mode_round_trip(self):
        bank = MemoryBankDevice()
        bank.enter_self_refresh()
        bank.enter_active_idle()
        assert bank.mode is MemoryBank.ACTIVE_IDLE
        assert bank.serves_accesses

    def test_powered_off_bank_cannot_serve(self):
        bank = MemoryBankDevice()
        bank.set_state(DeviceState.D3_COLD)
        with pytest.raises(DeviceStateError):
            bank.access()


class TestInfinibandCard:
    def test_dma_path_needs_card_and_bank(self):
        nic = InfinibandCard()
        bank = MemoryBankDevice()
        nic.dma_to_memory(bank)  # ok in D0/active-idle

    def test_dma_fails_with_card_in_wol(self):
        nic = InfinibandCard()
        nic.set_state(DeviceState.D3_HOT)
        with pytest.raises(DeviceStateError):
            nic.dma_to_memory(MemoryBankDevice())

    def test_dma_fails_with_bank_in_self_refresh(self):
        nic = InfinibandCard()
        bank = MemoryBankDevice()
        bank.enter_self_refresh()
        with pytest.raises(DeviceStateError):
            nic.dma_to_memory(bank)

    def test_wol_standby_power_nonzero(self):
        nic = InfinibandCard()
        nic.set_state(DeviceState.D3_HOT)
        assert 0.0 < nic.power_draw() < nic.idle_watts


class TestDeviceCatalog:
    def test_default_domains(self):
        assert Cpu().domain == "cpu"
        assert MemoryBankDevice().domain == "memory"
        assert InfinibandCard().domain == "nic"
        assert PcieRootComplex().domain == "nic"
        assert StorageDevice().domain == "storage"
