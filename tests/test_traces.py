"""Trace schema, the synthetic generator, transforms, (de)serialization."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.google import generate_trace, trace_from_csv, trace_to_csv
from repro.traces.schema import Task, TraceConfig
from repro.traces.transform import double_memory_demand, scale_demand
from repro.units import DAY, HOUR


def _small_config(**kw):
    defaults = dict(n_servers=100, duration_days=2.0, seed=7)
    defaults.update(kw)
    return TraceConfig(**defaults)


class TestTaskSchema:
    def test_valid_task(self):
        task = Task(1, 0, 0.0, 100.0, 0.2, 0.3, 0.1, 0.2)
        assert task.duration_s == 100.0
        assert not task.idle
        assert task.active_at(50.0)
        assert not task.active_at(100.0)

    def test_idle_criterion(self):
        assert Task(1, 0, 0.0, 10.0, 0.2, 0.3, 0.005, 0.2).idle

    def test_end_before_start_rejected(self):
        with pytest.raises(TraceFormatError):
            Task(1, 0, 100.0, 50.0, 0.2, 0.3, 0.1, 0.2)

    def test_out_of_range_resources_rejected(self):
        with pytest.raises(TraceFormatError):
            Task(1, 0, 0.0, 10.0, 1.5, 0.3, 0.1, 0.2)

    def test_config_validation(self):
        with pytest.raises(TraceFormatError):
            TraceConfig(n_servers=0)
        with pytest.raises(TraceFormatError):
            TraceConfig(cpu_load=1.5)


class TestGenerator:
    def test_deterministic(self):
        a = generate_trace(_small_config())
        b = generate_trace(_small_config())
        assert a == b

    def test_seed_changes_trace(self):
        a = generate_trace(_small_config(seed=1))
        b = generate_trace(_small_config(seed=2))
        assert a != b

    def test_tasks_within_horizon(self):
        config = _small_config()
        for task in generate_trace(config):
            assert 0.0 <= task.start_s < config.duration_days * DAY
            assert task.end_s <= config.duration_days * DAY

    def test_usage_below_booking(self):
        for task in generate_trace(_small_config()):
            assert task.cpu_usage <= task.cpu_request
            assert task.mem_usage <= task.mem_request

    def test_mean_booked_load_near_target(self):
        config = _small_config(duration_days=4.0)
        tasks = generate_trace(config)
        horizon = config.duration_days * DAY
        cpu_time = sum(t.cpu_request * t.duration_s for t in tasks)
        achieved = cpu_time / (horizon * config.n_servers)
        assert achieved == pytest.approx(config.cpu_load, rel=0.25)

    def test_memory_ratio_near_target(self):
        config = _small_config(mem_to_cpu=1.5)
        tasks = generate_trace(config)
        cpu = sum(t.cpu_request * t.duration_s for t in tasks)
        mem = sum(t.mem_request * t.duration_s for t in tasks)
        assert mem / cpu == pytest.approx(1.5, rel=0.2)

    def test_idle_fraction_near_target(self):
        config = _small_config(idle_fraction=0.2, duration_days=4.0)
        tasks = generate_trace(config)
        idle = sum(1 for t in tasks if t.idle)
        assert idle / len(tasks) == pytest.approx(0.2, abs=0.05)


class TestTransforms:
    def test_double_memory_sets_2x_ratio(self):
        tasks = generate_trace(_small_config())
        doubled = double_memory_demand(tasks)
        for before, after in zip(tasks, doubled):
            if before.cpu_request * 2 <= 0.95:
                assert after.mem_request == pytest.approx(
                    before.cpu_request * 2, abs=1e-6
                )

    def test_usage_ratio_preserved(self):
        task = Task(1, 0, 0.0, 10.0, 0.2, 0.4, 0.1, 0.2)  # uses 50 % of mem
        out = scale_demand([task], mem_to_cpu=2.0)[0]
        assert out.mem_usage / out.mem_request == pytest.approx(0.5)

    def test_memory_capped_at_server(self):
        task = Task(1, 0, 0.0, 10.0, 0.8, 0.8, 0.4, 0.4)
        out = scale_demand([task], mem_to_cpu=2.0)[0]
        assert out.mem_request <= 0.95

    def test_invalid_ratio_rejected(self):
        with pytest.raises(TraceFormatError):
            scale_demand([], mem_to_cpu=0.0)


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        tasks = generate_trace(_small_config())[:50]
        path = str(tmp_path / "trace.csv")
        trace_to_csv(tasks, path)
        assert trace_from_csv(path) == tasks
