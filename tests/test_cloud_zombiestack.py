"""The ZombieStack orchestrator over a real rack."""

import pytest

from repro.cloud.zombiestack import ZombieStackOrchestrator
from repro.core.rack import Rack
from repro.errors import AdmissionError, ConfigurationError, PlacementError
from repro.hypervisor.vm import VmSpec
from repro.units import MiB


def _rack(names=("a", "b", "c")):
    return Rack(list(names), memory_bytes=256 * MiB, buff_size=8 * MiB)


def _spec(name, mem_mib=48, vcpus=8):
    return VmSpec(name, mem_mib * MiB, vcpus=vcpus)


class TestPlacement:
    def test_boot_places_and_tracks(self):
        orch = ZombieStackOrchestrator(_rack())
        vm = orch.boot_vm(_spec("web"))
        assert orch.placements["web"] in ("a", "b", "c")
        assert vm.local_fraction >= 0.5

    def test_stacking_fills_one_host_first(self):
        orch = ZombieStackOrchestrator(_rack(), vcpu_capacity=32)
        orch.boot_vm(_spec("v1", mem_mib=16))
        orch.boot_vm(_spec("v2", mem_mib=16))
        assert orch.placements["v1"] == orch.placements["v2"]

    def test_vcpu_filter_spreads_when_full(self):
        orch = ZombieStackOrchestrator(_rack(), vcpu_capacity=8)
        orch.boot_vm(_spec("v1", vcpus=8))
        orch.boot_vm(_spec("v2", vcpus=8))
        assert orch.placements["v1"] != orch.placements["v2"]

    def test_admission_blocks_remote_overcommit(self):
        rack = _rack(("a", "b"))
        orch = ZombieStackOrchestrator(rack)
        orch.admission.resize_rack(64 * MiB)  # tiny guaranteed pool
        orch.boot_vm(_spec("v1", mem_mib=64))
        with pytest.raises(AdmissionError):
            orch.boot_vm(_spec("v2", mem_mib=64))

    def test_failed_placement_releases_admission(self):
        orch = ZombieStackOrchestrator(_rack(("a",)), vcpu_capacity=8)
        orch.boot_vm(_spec("v1", vcpus=8))
        with pytest.raises(PlacementError):
            orch.boot_vm(_spec("v2", vcpus=8))
        assert "v2" not in orch.admission.reservations

    def test_wakes_zombie_when_rack_is_tight(self):
        rack = _rack()
        orch = ZombieStackOrchestrator(rack, vcpu_capacity=8)
        rack.make_zombie("c")
        orch.boot_vm(_spec("v1", vcpus=8))
        orch.boot_vm(_spec("v2", vcpus=8))
        # a and b are vCPU-full: the third VM needs c back.
        orch.boot_vm(_spec("v3", vcpus=8))
        assert not rack.server("c").is_zombie
        assert orch.placements["v3"] == "c"

    def test_stop_vm_releases_everything(self):
        orch = ZombieStackOrchestrator(_rack())
        orch.boot_vm(_spec("v1"))
        orch.stop_vm("v1")
        assert "v1" not in orch.placements
        assert "v1" not in orch.admission.reservations
        with pytest.raises(PlacementError):
            orch.stop_vm("v1")

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            ZombieStackOrchestrator(_rack(), local_threshold=0.0)
        with pytest.raises(ConfigurationError):
            ZombieStackOrchestrator(_rack(), vcpu_capacity=0)


class TestConsolidation:
    def test_underload_detection(self):
        orch = ZombieStackOrchestrator(_rack(), vcpu_capacity=32,
                                       underload_vcpu_fraction=0.5)
        orch.boot_vm(_spec("small", vcpus=4))
        assert [s.name for s in orch.underloaded_servers()] \
            == [orch.placements["small"]]

    def test_cycle_migrates_and_parks_in_sz(self):
        rack = _rack()
        orch = ZombieStackOrchestrator(rack, vcpu_capacity=32,
                                       underload_vcpu_fraction=0.5)
        v1 = orch.boot_vm(_spec("v1", vcpus=12, mem_mib=32))
        # Force v2 onto a different host to create an underloaded one.
        orch.vcpu_capacity = 16
        v2 = orch.boot_vm(_spec("v2", vcpus=8, mem_mib=32))
        host1, host2 = orch.placements["v1"], orch.placements["v2"]
        assert host1 != host2
        # Touch some pages so the migration has real state to move.
        for name, vm in (("v1", v1), ("v2", v2)):
            hv = rack.server(orch.placements[name]).hypervisor
            for ppn in range(0, vm.spec.total_pages, 4):
                hv.access(vm, ppn)

        orch.vcpu_capacity = 32
        report = orch.consolidate()
        # Both hosts were underloaded: the cycle packs everything onto the
        # fewest hosts and parks the emptied ones in Sz.
        assert report.migrations >= 1
        assert report.new_zombies
        assert all(rack.server(name).is_zombie
                   for name in report.new_zombies)
        assert orch.placements["v1"] == orch.placements["v2"]

    def test_periodic_consolidation_on_the_engine(self):
        rack = _rack()
        orch = ZombieStackOrchestrator(rack, vcpu_capacity=32,
                                       underload_vcpu_fraction=0.5,
                                       consolidation_period_s=60.0)
        orch.vcpu_capacity = 16
        orch.boot_vm(_spec("v1", vcpus=12, mem_mib=32))
        orch.boot_vm(_spec("v2", vcpus=4, mem_mib=32))
        orch.vcpu_capacity = 32
        rack.engine.run(until=61.0)
        assert len(rack.zombie_servers()) >= 1

    def test_full_cycle_boot_consolidate_boot(self):
        """Consolidation frees a host; a later burst wakes it again."""
        rack = _rack()
        orch = ZombieStackOrchestrator(rack, vcpu_capacity=12,
                                       underload_vcpu_fraction=0.5)
        orch.boot_vm(_spec("v1", vcpus=12, mem_mib=32))
        orch.boot_vm(_spec("v2", vcpus=4, mem_mib=32))
        orch.vcpu_capacity = 16
        orch.consolidate()
        zombies_mid = len(rack.zombie_servers())
        assert zombies_mid >= 1
        # Burst: needs more vCPUs than the remaining active hosts hold.
        orch.boot_vm(_spec("burst1", vcpus=12, mem_mib=32))
        orch.boot_vm(_spec("burst2", vcpus=12, mem_mib=32))
        assert len(rack.zombie_servers()) < zombies_mid


class TestSleeperHandling:
    """Regression tests for bugs the metered-day benchmark surfaced."""

    def test_active_servers_excludes_s3(self):
        from repro.acpi.states import SleepState
        rack = _rack()
        rack.server("c").suspend(SleepState.S3)
        names = {s.name for s in rack.active_servers()}
        assert names == {"a", "b"}

    def test_consolidate_never_zombifies_a_sleeper(self):
        from repro.acpi.states import SleepState
        rack = _rack()
        orch = ZombieStackOrchestrator(rack)
        rack.server("c").suspend(SleepState.S3)
        orch.consolidate()  # must not call go_zombie on the S3 server
        assert rack.server("c").state is SleepState.S3

    def test_placement_wakes_s3_sleeper_when_no_zombie(self):
        from repro.acpi.states import SleepState
        rack = _rack()
        orch = ZombieStackOrchestrator(rack, vcpu_capacity=8)
        rack.server("b").suspend(SleepState.S3)
        rack.server("c").suspend(SleepState.S3)
        orch.boot_vm(_spec("v1", vcpus=8))
        # 'a' is full and no zombies exist: the S3 sleeper must come back.
        orch.boot_vm(_spec("v2", vcpus=8))
        assert orch.placements["v2"] in ("b", "c")
        woken = orch.placements["v2"]
        assert rack.server(woken).state is SleepState.S0
