"""The discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_fires_in_schedule_order(self):
        engine = Engine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule(1.0, lambda t=tag: fired.append(t))
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        engine.schedule(7.5, lambda: None)
        engine.run()
        assert engine.now == 7.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_twice_is_harmless(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert engine.run() == 0


class TestRun:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0

    def test_run_until_then_resume(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        engine.run()
        assert fired == [10]

    def test_advance(self):
        engine = Engine()
        fired = []
        engine.schedule(3.0, lambda: fired.append(3))
        engine.advance(2.0)
        assert fired == [] and engine.now == 2.0
        engine.advance(2.0)
        assert fired == [3] and engine.now == 4.0

    def test_callbacks_can_schedule_more_events(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1.0, lambda: chain(n + 1))

        engine.schedule(1.0, lambda: chain(1))
        engine.run()
        assert fired == [1, 2, 3]

    def test_max_events_guards_runaway(self):
        engine = Engine()

        def forever():
            engine.schedule(0.001, forever)

        engine.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)

    def test_returns_executed_count(self):
        engine = Engine()
        for i in range(5):
            engine.schedule(float(i), lambda: None)
        assert engine.run() == 5

    def test_pending_counts_live_events(self):
        engine = Engine()
        keep = engine.schedule(1.0, lambda: None)
        cancelled = engine.schedule(2.0, lambda: None)
        cancelled.cancel()
        assert engine.pending() == 1
        assert keep.time == 1.0


class TestPeriodicProcess:
    def test_fires_every_period(self):
        engine = Engine()
        ticks = []
        proc = PeriodicProcess(engine, 1.0, lambda: ticks.append(engine.now))
        proc.start()
        engine.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_stop_halts_ticks(self):
        engine = Engine()
        proc = PeriodicProcess(engine, 1.0, lambda: None)
        proc.start()
        engine.run(until=2.5)
        proc.stop()
        engine.run(until=10.0)
        assert proc.ticks == 2
        assert not proc.running

    def test_action_can_stop_itself(self):
        engine = Engine()
        proc = PeriodicProcess(engine, 1.0, lambda: proc.stop())
        proc.start()
        engine.run(until=10.0)
        assert proc.ticks == 1

    def test_double_start_is_noop(self):
        engine = Engine()
        proc = PeriodicProcess(engine, 1.0, lambda: None)
        proc.start()
        proc.start()
        engine.run(until=1.5)
        assert proc.ticks == 1

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicProcess(Engine(), 0.0, lambda: None)
