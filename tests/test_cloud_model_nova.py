"""Cluster model and Nova placement."""

import pytest

from repro.cloud.model import (ClusterModel, HostModel, HostPowerState,
                               VmInstance)
from repro.cloud.nova import NovaScheduler
from repro.errors import ConfigurationError, PlacementError


def _vm(name, cpu=0.2, mem=0.3, cpu_usage=0.1, mem_usage=0.2, **kw):
    return VmInstance(name, cpu_request=cpu, mem_request=mem,
                      cpu_usage=cpu_usage, mem_usage=mem_usage, **kw)


class TestVmInstance:
    def test_local_remote_split(self):
        vm = _vm("v", mem=0.4, local_mem_fraction=0.5)
        assert vm.local_mem == pytest.approx(0.2)
        assert vm.remote_mem == pytest.approx(0.2)

    def test_idle_criterion(self):
        assert _vm("v", cpu_usage=0.005).idle
        assert not _vm("v", cpu_usage=0.02).idle

    def test_working_set_falls_back_to_booking(self):
        assert _vm("v", mem=0.4, mem_usage=0.0).working_set == 0.4

    def test_invalid_requests(self):
        with pytest.raises(ConfigurationError):
            _vm("v", cpu=0.0)
        with pytest.raises(ConfigurationError):
            _vm("v", mem=1.5)


class TestHostModel:
    def test_aggregates(self):
        host = HostModel("h")
        host.add_vm(_vm("a", cpu=0.3, mem=0.2))
        host.add_vm(_vm("b", cpu=0.2, mem=0.3))
        assert host.cpu_booked == pytest.approx(0.5)
        assert host.free_cpu == pytest.approx(0.5)
        assert host.free_mem == pytest.approx(0.5)

    def test_capacity_enforced(self):
        host = HostModel("h")
        host.add_vm(_vm("a", cpu=0.9, mem=0.2))
        with pytest.raises(PlacementError):
            host.add_vm(_vm("b", cpu=0.2, mem=0.2))

    def test_memory_enforced_on_local_part_only(self):
        host = HostModel("h")
        host.add_vm(_vm("a", cpu=0.1, mem=0.9, local_mem_fraction=0.3))
        host.add_vm(_vm("b", cpu=0.1, mem=0.9, local_mem_fraction=0.3))
        assert host.free_mem == pytest.approx(1.0 - 2 * 0.27)

    def test_cannot_place_on_sleeping_host(self):
        host = HostModel("h", state=HostPowerState.SUSPENDED)
        with pytest.raises(PlacementError):
            host.add_vm(_vm("a"))

    def test_remove_unknown(self):
        with pytest.raises(PlacementError):
            HostModel("h").remove_vm("ghost")


class TestClusterModel:
    def test_suspend_requires_empty_host(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.host("h1").add_vm(_vm("a"))
        with pytest.raises(PlacementError):
            cluster.suspend("h1", zombie=True)

    def test_zombie_lends_memory_to_pool(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=True)
        assert cluster.remote_pool_free == pytest.approx(0.94)
        assert cluster.zombie_hosts()[0].name == "h2"

    def test_s3_lends_nothing(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=False)
        assert cluster.remote_pool_free == 0.0

    def test_remote_pool_consumed_by_remote_placements(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=True)
        cluster.host("h1").add_vm(_vm("a", mem=0.5, local_mem_fraction=0.5))
        assert cluster.remote_pool_free == pytest.approx(0.94 - 0.25)

    def test_wake_with_reclaim(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=True)
        host = cluster.wake("h2", reclaim=0.5)
        assert host.state is HostPowerState.ON
        assert host.lent_mem == pytest.approx(0.44)

    def test_find_vm(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.host("h2").add_vm(_vm("a"))
        assert cluster.find_vm("a").name == "h2"
        assert cluster.find_vm("ghost") is None


class TestNovaScheduler:
    def test_vanilla_requires_full_booking(self):
        cluster = ClusterModel(["h1"])
        cluster.host("h1").add_vm(_vm("existing", cpu=0.1, mem=0.6))
        nova = NovaScheduler(cluster, remote_memory_aware=False)
        with pytest.raises(PlacementError):
            nova.place(_vm("big", cpu=0.1, mem=0.6))

    def test_relaxed_filter_uses_remote_pool(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=True)
        cluster.host("h1").add_vm(_vm("existing", cpu=0.1, mem=0.6))
        nova = NovaScheduler(cluster, remote_memory_aware=True)
        host = nova.place(_vm("big", cpu=0.1, mem=0.6))
        assert host.name == "h1"
        vm = host.vms["big"]
        assert vm.local_mem_fraction < 1.0

    def test_relaxed_filter_still_needs_half_locally(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=True)
        cluster.host("h1").add_vm(_vm("existing", cpu=0.1, mem=0.8))
        nova = NovaScheduler(cluster, local_threshold=0.5)
        with pytest.raises(PlacementError):
            nova.place(_vm("big", cpu=0.1, mem=0.6))

    def test_relaxed_filter_needs_pool_capacity(self):
        cluster = ClusterModel(["h1"])  # no zombie: empty pool
        cluster.host("h1").add_vm(_vm("existing", cpu=0.1, mem=0.6))
        nova = NovaScheduler(cluster, remote_memory_aware=True)
        with pytest.raises(PlacementError):
            nova.place(_vm("big", cpu=0.1, mem=0.6))

    def test_cpu_filter_always_applies(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=True)
        cluster.host("h1").add_vm(_vm("existing", cpu=0.9, mem=0.1))
        nova = NovaScheduler(cluster)
        with pytest.raises(PlacementError):
            nova.place(_vm("big", cpu=0.2, mem=0.1))

    def test_stacking_prefers_loaded_host(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.host("h1").add_vm(_vm("existing", cpu=0.3, mem=0.1))
        nova = NovaScheduler(cluster, remote_memory_aware=False,
                             stacking=True)
        assert nova.place(_vm("new", cpu=0.1, mem=0.1)).name == "h1"

    def test_spreading_prefers_empty_host(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.host("h1").add_vm(_vm("existing", cpu=0.3, mem=0.1))
        nova = NovaScheduler(cluster, remote_memory_aware=False,
                             stacking=False)
        assert nova.place(_vm("new", cpu=0.1, mem=0.1)).name == "h2"

    def test_fully_local_when_room(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.suspend("h2", zombie=True)
        nova = NovaScheduler(cluster)
        host = nova.place(_vm("v", cpu=0.1, mem=0.3))
        assert host.vms["v"].local_mem_fraction == 1.0

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            NovaScheduler(ClusterModel(["h"]), local_threshold=0.0)
