"""The three replacement policies."""

import pytest

from repro.errors import ConfigurationError, PageTableError
from repro.memory.frames import Frame
from repro.memory.page_table import PageTable
from repro.memory.replacement import (ClockPolicy, FifoPolicy, MixedPolicy,
                                      make_policy)


def _resident_table(n, policy):
    table = PageTable(max(n, 1) + 64)
    for ppn in range(n):
        table.map_local(ppn, Frame(ppn))
        policy.note_resident(ppn)
    return table


class TestFactory:
    def test_names(self):
        assert isinstance(make_policy("FIFO"), FifoPolicy)
        assert isinstance(make_policy("Clock"), ClockPolicy)
        assert isinstance(make_policy("Mixed"), MixedPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("LRU")

    def test_kwargs_forwarded(self):
        assert make_policy("Mixed", x=9).x == 9


class TestFifo:
    def test_evicts_oldest_fault(self):
        policy = FifoPolicy()
        table = _resident_table(5, policy)
        assert policy.select_victim(table) == 0
        assert policy.select_victim(table) == 1

    def test_skips_stale_entries(self):
        policy = FifoPolicy()
        table = _resident_table(5, policy)
        table.demote(0, remote_slot=0)  # page 0 left residency elsewhere
        assert policy.select_victim(table) == 1

    def test_refaulted_page_moves_to_tail(self):
        policy = FifoPolicy()
        table = _resident_table(3, policy)
        victim = policy.select_victim(table)
        table.demote(victim, remote_slot=0)
        table.map_local(victim, Frame(60))
        policy.note_resident(victim)
        assert policy.select_victim(table) == 1
        assert policy.select_victim(table) == 2
        assert policy.select_victim(table) == victim

    def test_empty_list_raises(self):
        policy = FifoPolicy()
        table = PageTable(8)
        with pytest.raises(PageTableError):
            policy.select_victim(table)

    def test_cycles_accounted(self):
        policy = FifoPolicy()
        table = _resident_table(3, policy)
        policy.select_victim(table)
        assert policy.cycles_total > 0
        assert policy.victims_selected == 1
        assert policy.mean_cycles_per_victim == policy.cycles_total


class TestClock:
    def test_prefers_unaccessed_pages(self):
        policy = ClockPolicy(clear_interval=1000)
        table = _resident_table(4, policy)
        # Age the bits out (two epochs), then re-touch all but page 2.
        table.clear_accessed_bits()
        table.clear_accessed_bits()
        for ppn in (0, 1, 3):
            table.mark_accessed(ppn)
        assert policy.select_victim(table) == 2

    def test_degrades_to_fifo_when_all_accessed(self):
        policy = ClockPolicy(clear_interval=1000)
        table = _resident_table(4, policy)
        assert policy.select_victim(table) == 0

    def test_second_chance_rotates_accessed_pages(self):
        policy = ClockPolicy(clear_interval=1000)
        table = _resident_table(3, policy)
        table.clear_accessed_bits()
        table.clear_accessed_bits()
        table.mark_accessed(0)  # head page is hot
        assert policy.select_victim(table) == 1
        # page 0 survived and was rotated behind 2
        table.clear_accessed_bits()
        table.clear_accessed_bits()
        assert policy.select_victim(table) == 2
        assert policy.select_victim(table) == 0

    def test_periodic_clear_charged(self):
        policy = ClockPolicy(clear_interval=2)
        table = _resident_table(6, policy)
        policy.select_victim(table)
        before = table.epoch
        policy.select_victim(table)  # second selection triggers the sweep
        assert table.epoch == before + 1

    def test_scan_cost_exceeds_fifo(self):
        fifo, clock = FifoPolicy(), ClockPolicy(clear_interval=1000)
        t1 = _resident_table(50, fifo)
        t2 = _resident_table(50, clock)
        fifo.select_victim(t1)
        clock.select_victim(t2)  # all accessed: full sweep + degrade
        assert clock.cycles_total > fifo.cycles_total

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            ClockPolicy(clear_interval=0)


class TestMixed:
    def test_clock_window_protects_head(self):
        policy = MixedPolicy(x=2, clear_interval=1000)
        table = _resident_table(5, policy)
        table.clear_accessed_bits()
        table.clear_accessed_bits()
        table.mark_accessed(0)
        table.mark_accessed(1)
        # 0 and 1 are hot: window skips them, evicts 2.
        assert policy.select_victim(table) == 2

    def test_fifo_beyond_window(self):
        policy = MixedPolicy(x=2, clear_interval=1000)
        table = _resident_table(5, policy)
        # every page accessed -> window exhausted -> FIFO on the rest
        victim = policy.select_victim(table)
        assert victim == 2  # pages 0,1 got second chances

    def test_degrades_when_rest_is_empty(self):
        policy = MixedPolicy(x=5, clear_interval=1000)
        table = _resident_table(2, policy)
        assert policy.select_victim(table) in (0, 1)

    def test_bounded_cost_vs_clock(self):
        mixed = MixedPolicy(x=5, clear_interval=10 ** 6)
        clock = ClockPolicy(clear_interval=10 ** 6)
        t1 = _resident_table(200, mixed)
        t2 = _resident_table(200, clock)
        mixed.select_victim(t1)
        clock.select_victim(t2)
        assert mixed.cycles_total < clock.cycles_total

    def test_invalid_x(self):
        with pytest.raises(ConfigurationError):
            MixedPolicy(x=0)


class TestForget:
    def test_forget_removes_tracking(self):
        policy = FifoPolicy()
        table = _resident_table(3, policy)
        policy.forget(0)
        assert policy.select_victim(table) == 1

    def test_forget_unknown_is_noop(self):
        FifoPolicy().forget(999)
