"""Exporters, their validators, the report renderer and the CLI gate."""

import json

import pytest

from repro.obs import Telemetry
from repro.obs.export import (to_chrome_trace, to_prometheus_text,
                              validate_chrome_trace,
                              validate_prometheus_text)
from repro.obs.report import render_report


def _populated_hub():
    tel = Telemetry(enabled=True)
    tel.registry.counter("rpc_calls_total", "Calls.", verb="GS_wake").inc(3)
    tel.registry.gauge("zombie_hosts", "Hosts in Sz.").set(2)
    hist = tel.registry.histogram("rpc_call_seconds", "Latency.",
                                  verb="GS_wake")
    hist.observe(12e-6)
    hist.observe(48e-6)
    with tel.tracer.span("call.GS_wake", node="user") as outer:
        with tel.tracer.span("serve.GS_wake", node="ctrl") as inner:
            inner.span.end_s = inner.span.start_s + 10e-6
        outer.span.end_s = outer.span.start_s + 40e-6
    tel.tracer.sample("rack_power_watts", 420.0, track="HP", time_s=3600.0)
    return tel


class TestPrometheusExport:
    def test_roundtrip_is_validator_clean(self):
        tel = _populated_hub()
        text = to_prometheus_text(tel.registry)
        assert validate_prometheus_text(text) == []

    def test_renders_types_series_and_buckets(self):
        text = to_prometheus_text(_populated_hub().registry)
        assert "# TYPE rpc_calls_total counter" in text
        assert '# HELP zombie_hosts Hosts in Sz.' in text
        assert 'rpc_calls_total{verb="GS_wake"} 3' in text
        assert "zombie_hosts 2" in text
        assert '# TYPE rpc_call_seconds histogram' in text
        assert 'le="+Inf"} 2' in text
        assert 'rpc_call_seconds_count{verb="GS_wake"} 2' in text

    def test_unit_metadata_derived_from_suffix_contract(self):
        # The exporter and ZL014 share repro.units.METRIC_UNIT_SUFFIXES:
        # every suffixed family gets a # UNIT line, unsuffixed ones none.
        text = to_prometheus_text(_populated_hub().registry)
        assert "# UNIT rpc_call_seconds seconds" in text
        assert "# UNIT zombie_hosts" not in text
        assert validate_prometheus_text(text) == []

    def test_validator_rejects_wrong_unit_metadata(self):
        text = to_prometheus_text(_populated_hub().registry)
        bad = text.replace("# UNIT rpc_call_seconds seconds",
                           "# UNIT rpc_call_seconds joules")
        problems = validate_prometheus_text(bad)
        assert any("suffix contract" in p for p in problems)

    def test_validator_catches_regressions(self):
        assert validate_prometheus_text("") == ["no samples at all"]
        problems = validate_prometheus_text("rogue_metric 1\n")
        assert any("no TYPE header" in p for p in problems)
        problems = validate_prometheus_text(
            "# TYPE x counter\nx{unterminated 1\n")
        assert any("malformed sample" in p for p in problems)

    def test_empty_registry_exports_empty(self):
        tel = Telemetry(enabled=True)
        assert to_prometheus_text(tel.registry) == ""


class TestChromeTraceExport:
    def test_roundtrip_is_validator_clean(self):
        tel = _populated_hub()
        text = to_chrome_trace(tel.tracer, tel.registry)
        assert validate_chrome_trace(text) == []

    def test_spans_and_samples_become_events(self):
        tel = _populated_hub()
        doc = json.loads(to_chrome_trace(tel.tracer, tel.registry))
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in complete} == {"call.GS_wake",
                                                "serve.GS_wake"}
        serve = next(e for e in complete if e["name"] == "serve.GS_wake")
        call = next(e for e in complete if e["name"] == "call.GS_wake")
        assert serve["args"]["parent_id"] == call["args"]["span_id"]
        assert serve["pid"] == call["pid"]  # one pid per trace
        assert serve["dur"] == pytest.approx(10.0)  # µs
        (counter,) = counters
        assert counter["name"] == "rack_power_watts"
        assert counter["args"] == {"HP": 420.0}
        assert counter["ts"] == 3600.0 * 1e6
        # Node names become thread metadata so Perfetto labels lanes.
        thread_names = [e["args"]["name"] for e in events
                        if e["ph"] == "M"]
        assert {"user", "ctrl"} <= set(thread_names)

    def test_validator_catches_regressions(self):
        assert validate_chrome_trace("{nope") == [
            "not valid JSON: Expecting property name enclosed in double "
            "quotes: line 1 column 2 (char 2)",
        ] or validate_chrome_trace("{nope")[0].startswith("not valid JSON")
        assert validate_chrome_trace('{"x": 1}') == ["missing traceEvents key"]
        broken = json.dumps({"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "dur": 1.0, "args": {}},
        ]})
        assert any("no span_id" in p for p in validate_chrome_trace(broken))
        dangling = json.dumps({"traceEvents": [
            {"name": "a", "ph": "X", "pid": 1, "ts": 0, "dur": 1.0,
             "args": {"span_id": 5, "parent_id": 99}},
        ]})
        assert any("dangling parent" in p
                   for p in validate_chrome_trace(dangling))


class TestReport:
    def test_report_covers_every_section(self):
        report = render_report(_populated_hub(), top_n=5)
        assert "Per-verb RPC latency" in report
        assert "GS_wake" in report
        assert "Top 5 slowest spans" in report
        assert "call.GS_wake" in report
        assert "Sz residency" in report
        assert "hosts in Sz now: 2" in report
        assert "Registry census" in report
        assert "timeline samples: 1" in report

    def test_disabled_hub_renders_a_stub(self):
        report = render_report(Telemetry(enabled=False))
        assert "DISABLED" in report

    def test_all_timeouts_verb_still_listed(self):
        """A verb with retries/failures but zero completed calls must
        appear (with '-' quantiles), not silently vanish."""
        tel = Telemetry(enabled=True)
        tel.registry.histogram("rpc_call_seconds", "Latency.",
                               verb="GS_wake")  # registered, never observed
        tel.registry.counter("rpc_retries_total", "Retries.",
                             verb="GS_wake").inc(3)
        tel.registry.counter("rpc_failures_total", "Failures.",
                             verb="GS_wake").inc(1)
        report = render_report(tel)
        line = next(l for l in report.splitlines() if "GS_wake" in l)
        assert line.count("-") >= 3          # p50/p90/p99 placeholders
        assert "3" in line and "1" in line   # retries and errors survive

    def test_idle_registered_verb_renders_placeholder(self):
        """Empty histograms with no retries/errors at all: the table
        collapses to the no-calls placeholder, never a bare header."""
        tel = Telemetry(enabled=True)
        tel.registry.histogram("rpc_call_seconds", "Latency.",
                               verb="GS_wake")
        report = render_report(tel)
        assert "(no RPC calls recorded)" in report
        assert "p50" not in report           # header not rendered rowless

    def test_report_data_machine_readable(self):
        from repro.obs.report import render_report_json, report_data
        data = report_data(_populated_hub(), top_n=5)
        assert data["enabled"] is True
        assert data["verbs"][0]["verb"] == "GS_wake"
        assert data["verbs"][0]["calls"] == 2
        assert data["verbs"][0]["p50_s"] is not None
        assert data["sz_residency"]["hosts_in_sz"] == 2
        assert data["registry"]["timeline_samples"] == 1
        text = render_report_json(_populated_hub(), top_n=5)
        assert json.loads(text)["enabled"] is True
        assert text.endswith("\n")
        assert report_data(Telemetry(enabled=False)) == {"enabled": False}
