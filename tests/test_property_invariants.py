"""Property-based tests (hypothesis) on the core data structures.

Each property encodes an invariant the system relies on:
- the frame allocator conserves frames under any alloc/free interleaving;
- page-table residency counters always match the entries;
- every replacement policy only ever evicts resident pages;
- the remote page store never loses a stored page, even across lease
  revocations;
- the buffer database journal replays to an identical replica;
- the energy meter integral equals the sum of its segments.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.database import BufferDatabase
from repro.core.protocol import BufferDescriptor, BufferKind
from repro.energy.meter import EnergyMeter
from repro.memory.buffers import BufferLease, RemotePageStore
from repro.memory.frames import FrameAllocator
from repro.memory.page_table import PageLocation, PageTable
from repro.memory.replacement import make_policy
from repro.rdma.fabric import Fabric
from repro.sim.rng import DeterministicRng
from repro.units import PAGE_SIZE


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 15)),
                    max_size=60))
def test_frame_allocator_conserves_frames(ops):
    alloc = FrameAllocator(16)
    held = []
    for is_alloc, index in ops:
        if is_alloc:
            frame = alloc.try_alloc()
            if frame is not None:
                held.append(frame)
        elif held:
            alloc.free(held.pop(index % len(held)))
    assert alloc.free_frames + alloc.used_frames == 16
    assert alloc.used_frames == len(held)
    assert len({f.mfn for f in held}) == len(held)  # no double handout


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["map", "demote", "discard"]),
                              st.integers(0, 31)), max_size=80))
def test_page_table_counters_match_entries(ops):
    table = PageTable(32)
    alloc = FrameAllocator(32)
    frames = {}
    for op, ppn in ops:
        entry = table.entry(ppn)
        if op == "map" and not entry.present:
            frame = alloc.try_alloc()
            if frame is not None:
                table.map_local(ppn, frame)
                frames[ppn] = frame
        elif op == "demote" and entry.present:
            alloc.free(table.demote(ppn, remote_slot=ppn))
            frames.pop(ppn, None)
        elif op == "discard":
            freed = table.discard(ppn)
            if freed is not None:
                alloc.free(freed)
            frames.pop(ppn, None)
    resident = sum(1 for e in table.resident())
    assert table.resident_pages == resident
    remote = sum(1 for p in range(32)
                 if table.entry(p).location is PageLocation.REMOTE)
    # entry() creates entries lazily, so recount after the sweep
    assert table.remote_pages == remote


@settings(max_examples=30, deadline=None)
@given(policy_name=st.sampled_from(["FIFO", "Clock", "Mixed"]),
       accesses=st.lists(st.integers(0, 23), min_size=1, max_size=120),
       quota=st.integers(2, 8))
def test_policies_only_evict_resident_pages(policy_name, accesses, quota):
    policy = make_policy(policy_name)
    table = PageTable(24)
    alloc = FrameAllocator(quota)
    slot = 0
    for ppn in accesses:
        entry = table.entry(ppn)
        if entry.present:
            table.mark_accessed(ppn)
            continue
        frame = alloc.try_alloc()
        if frame is None:
            victim = policy.select_victim(table)
            assert table.entry(victim).present, "evicted a non-resident page"
            slot += 1
            alloc.free(table.demote(victim, remote_slot=slot))
            frame = alloc.alloc()
        table.map_local(ppn, frame)
        policy.note_resident(ppn)
    assert table.resident_pages <= quota


@settings(max_examples=25, deadline=None)
@given(payloads=st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                         max_size=12),
       revoke_first=st.booleans())
def test_remote_store_never_loses_pages(payloads, revoke_first):
    fabric = Fabric()
    user = fabric.add_node("u")
    server = fabric.add_node("s")
    store = RemotePageStore(user)
    for i, n_pages in enumerate((8, 8)):
        mr = server.register_mr(n_pages * PAGE_SIZE)
        store.add_lease(BufferLease(i + 1, "s", mr.rkey,
                                    n_pages * PAGE_SIZE, zombie=True))
    keys = {}
    for payload in payloads:
        key, _ = store.store(payload)
        keys[key] = payload
    store.remove_lease(1 if revoke_first else 2)
    for key, payload in keys.items():
        data, _ = store.load(key)
        assert data[:len(payload)] == payload


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["add", "assign", "unassign", "remove"]),
              st.integers(1, 8)),
    max_size=40))
def test_buffer_db_journal_replay_is_faithful(ops):
    primary = BufferDatabase()
    for op, buffer_id in ops:
        try:
            if op == "add":
                primary.add(BufferDescriptor(
                    buffer_id=buffer_id, host="h", offset=0, size_bytes=64,
                    kind=BufferKind.ZOMBIE, rkey=buffer_id,
                ))
            elif op == "assign":
                primary.assign(buffer_id, "user")
            elif op == "unassign":
                primary.unassign(buffer_id)
            else:
                primary.remove(buffer_id)
        except Exception:
            continue  # invalid op on current state: skipped, not journaled
    replica = BufferDatabase()
    for op, args in primary.journal:
        replica.apply(op, args)
    assert len(replica) == len(primary)
    for descriptor in primary.all_buffers():
        assert replica.get(descriptor.buffer_id) == descriptor


@settings(max_examples=40, deadline=None)
@given(segments=st.lists(st.tuples(
    st.floats(0.0, 1000.0, allow_nan=False),
    st.floats(0.0, 100.0, allow_nan=False)), max_size=20))
def test_energy_meter_equals_sum_of_segments(segments):
    meter = EnergyMeter()
    for power, duration in segments:
        meter.accumulate(power, duration)
    expected = sum((t1 - t0) * w for t0, t1, w in meter.segments)
    assert math.isclose(meter.joules, expected, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2 ** 31 - 1), n=st.integers(1, 500),
       alpha=st.floats(0.1, 3.0, allow_nan=False))
def test_zipf_samples_always_in_range(seed, n, alpha):
    rng = DeterministicRng(seed)
    for _ in range(20):
        assert 0 <= rng.zipf(n, alpha) < n


@settings(max_examples=30, deadline=None)
@given(sizes=st.lists(st.integers(1, 10 * PAGE_SIZE), min_size=1,
                      max_size=10))
def test_units_pages_covers_size(sizes):
    from repro.units import pages
    for size in sizes:
        assert pages(size) * PAGE_SIZE >= size
        assert (pages(size) - 1) * PAGE_SIZE < size
