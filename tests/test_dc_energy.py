"""Demand aggregation and the Fig. 10 policy energy models."""

import pytest

from repro.dc.datacenter import aggregate_demand
from repro.dc.energy_sim import (POLICIES, PolicyEnergyResult, SlotPlan,
                                 energy_saving_comparison, plan_baseline,
                                 plan_neat, plan_oasis, plan_zombiestack,
                                 simulate_energy)
from repro.energy.profiles import DELL_PROFILE, HP_PROFILE
from repro.errors import ConfigurationError
from repro.traces.google import generate_trace
from repro.traces.schema import Task, TraceConfig
from repro.traces.transform import double_memory_demand
from repro.units import HOUR


def _task(start, end, cpu=0.2, mem=0.3, cpu_u=0.1, mem_u=0.2):
    return Task(1, 0, start, end, cpu, mem, cpu_u, mem_u)


class TestAggregation:
    def test_single_task_full_slot(self):
        slots = aggregate_demand([_task(0.0, HOUR)], slot_s=HOUR)
        assert len(slots) == 1
        assert slots[0].cpu_booked == pytest.approx(0.2)
        assert slots[0].mem_booked == pytest.approx(0.3)
        assert slots[0].task_count == 1

    def test_partial_overlap_weighted(self):
        slots = aggregate_demand([_task(0.0, HOUR / 2)], slot_s=HOUR)
        assert slots[0].cpu_booked == pytest.approx(0.1)

    def test_task_spanning_slots(self):
        slots = aggregate_demand([_task(0.0, 2 * HOUR)], slot_s=HOUR)
        assert len(slots) == 2
        assert slots[1].cpu_booked == pytest.approx(0.2)

    def test_idle_task_tracked_separately(self):
        slots = aggregate_demand([_task(0.0, HOUR, cpu_u=0.005)],
                                 slot_s=HOUR)
        assert slots[0].idle_cpu_booked == pytest.approx(0.2)

    def test_empty_trace(self):
        assert aggregate_demand([]) == []

    def test_invalid_slot(self):
        from repro.errors import TraceFormatError
        with pytest.raises(TraceFormatError):
            aggregate_demand([_task(0.0, 1.0)], slot_s=0.0)


class TestPlans:
    def _slot(self, cpu_b=30.0, mem_b=45.0, cpu_u=15.0, mem_u=25.0,
              idle_c=3.0, idle_m=5.0):
        from repro.dc.datacenter import DemandSlot
        return DemandSlot(0.0, HOUR, cpu_b, mem_b, cpu_u, mem_u,
                          idle_c, idle_m, task_count=100)

    def test_baseline_keeps_everything_on(self):
        plan = plan_baseline(self._slot(), 100)
        assert plan.active == 100
        assert plan.suspended == 0

    def test_neat_packs_and_suspends(self):
        plan = plan_neat(self._slot(), 100)
        assert plan.active < 100
        assert plan.active + plan.suspended == 100
        assert plan.utilization > 0.15  # denser than spread

    def test_neat_memory_bound_with_heavy_memory(self):
        light = plan_neat(self._slot(mem_b=20.0), 100)
        heavy = plan_neat(self._slot(mem_b=80.0), 100)
        assert heavy.active > light.active

    def test_zombiestack_ignores_booked_memory(self):
        light = plan_zombiestack(self._slot(mem_b=20.0), 100)
        heavy = plan_zombiestack(self._slot(mem_b=80.0), 100)
        assert heavy.active == pytest.approx(light.active)

    def test_zombiestack_spawns_zombies_for_cold_memory(self):
        plan = plan_zombiestack(self._slot(mem_u=60.0), 100)
        assert plan.zombies > 0

    def test_oasis_uses_memory_servers(self):
        plan = plan_oasis(self._slot(idle_c=10.0, idle_m=20.0), 100)
        assert plan.memory_servers > 0
        assert plan.active < plan_neat(self._slot(), 100).active

    def test_demand_exceeding_capacity_clamped(self):
        plan = plan_neat(self._slot(cpu_b=500.0), 100)
        assert plan.active == 100


class TestEnergySimulation:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceConfig(n_servers=200, duration_days=2.0,
                                          seed=11))

    def test_all_policies_save_vs_baseline(self, trace):
        for policy in ("Neat", "Oasis", "ZombieStack"):
            result = simulate_energy(trace, 200, HP_PROFILE, policy)
            assert result.saving_pct > 0

    def test_fig10_ordering(self, trace):
        """ZombieStack > Oasis > Neat on both trace sets."""
        for tasks in (trace, double_memory_demand(trace)):
            out = energy_saving_comparison(tasks, 200,
                                           (HP_PROFILE, DELL_PROFILE))
            for machine, row in out.items():
                assert row["ZombieStack"] > row["Oasis"] >= row["Neat"]

    def test_gap_widens_on_modified_traces(self, trace):
        orig = energy_saving_comparison(trace, 200, (HP_PROFILE,))["HP"]
        mod = energy_saving_comparison(double_memory_demand(trace), 200,
                                       (HP_PROFILE,))["HP"]
        gap_orig = orig["ZombieStack"] / max(orig["Neat"], 1e-9)
        gap_mod = mod["ZombieStack"] / max(mod["Neat"], 1e-9)
        assert gap_mod > gap_orig

    def test_zombiestack_relative_advantage_on_modified(self, trace):
        """The headline: ~86 % better than Neat on modified traces."""
        mod = energy_saving_comparison(double_memory_demand(trace), 200,
                                       (DELL_PROFILE,))["Dell"]
        relative = mod["ZombieStack"] / mod["Neat"] - 1.0
        assert relative > 0.5  # at least ~50 % better, paper reports 86 %

    def test_baseline_policy_saves_nothing(self, trace):
        result = simulate_energy(trace, 200, HP_PROFILE, "baseline")
        assert result.saving_pct == pytest.approx(0.0)

    def test_unknown_policy_rejected(self, trace):
        with pytest.raises(ConfigurationError):
            simulate_energy(trace, 200, HP_PROFILE, "TurboNap")

    def test_result_accounting(self, trace):
        result = simulate_energy(trace, 200, HP_PROFILE, "ZombieStack")
        assert result.slots == 48  # 2 days of hourly slots
        assert result.mean_zombies >= 0
        assert result.kwh > 0
