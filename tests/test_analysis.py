"""Experiment harnesses and small-scale experiment smoke checks.

Full-scale experiment assertions live in the benchmarks; here every
experiment runs at a reduced size to verify wiring and the headline shapes.
"""

import math

import pytest

from repro.analysis.experiments import (migration_comparison,
                                        ram_ext_penalty_table,
                                        replacement_policy_comparison,
                                        swap_technology_table,
                                        sz_energy_table)
from repro.analysis.figures import aws_memory_cpu_ratio, server_capacity_ratio
from repro.analysis.harness import ExplicitSdHarness, RamExtHarness
from repro.errors import ConfigurationError
from repro.workloads.macro import DataCaching
from repro.workloads.microbench import MicroBenchmark

TINY_MICRO = MicroBenchmark(wss_pages=256, passes=6)
FRACS = (0.4, 0.6)


class TestHarnesses:
    def test_ram_ext_harness_runs(self):
        harness = RamExtHarness(vm_pages=300, local_fraction=0.5)
        result = harness.run(TINY_MICRO.stream(), TINY_MICRO.compute_s)
        assert result.accesses > 0
        assert harness.stats.page_faults > 0

    def test_fully_local_harness(self):
        harness = RamExtHarness(vm_pages=300, local_fraction=1.0)
        result = harness.run(TINY_MICRO.stream(), TINY_MICRO.compute_s)
        assert harness.stats.evictions == 0

    def test_explicit_sd_harness_devices(self):
        for device in ("remote-ram", "local-ssd", "local-hdd"):
            harness = ExplicitSdHarness(vm_pages=128, local_fraction=0.5,
                                        device=device)
            result = harness.run(iter([(0, False), (1, True)]), 1e-6)
            assert result.accesses == 2

    def test_unknown_device_rejected(self):
        with pytest.raises(ConfigurationError):
            ExplicitSdHarness(vm_pages=64, local_fraction=0.5,
                              device="tape")

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            RamExtHarness(vm_pages=64, local_fraction=0.0)


class TestExperimentShapes:
    def test_fig8_policy_comparison_structure(self):
        data = replacement_policy_comparison(micro=TINY_MICRO,
                                             fractions=FRACS)
        assert set(data) == {"FIFO", "Clock", "Mixed"}
        for rows in data.values():
            assert set(rows) == set(FRACS)
            for cell in rows.values():
                assert cell["exec_s"] > 0
        # Clock pays the most cycles per fault, FIFO the least.
        for frac in FRACS:
            assert (data["Clock"][frac]["cycles_per_fault"]
                    > data["FIFO"][frac]["cycles_per_fault"])

    def test_table1_penalty_monotone_in_local_memory(self):
        table = ram_ext_penalty_table(
            workloads=[("micro", TINY_MICRO),
                       ("dc", DataCaching(wss_pages=256))],
            fractions=(0.4, 0.8),
        )
        for row in table.values():
            assert row[0.4] >= row[0.8] - 1.0  # small noise tolerance

    def test_table2_device_ordering(self):
        table = swap_technology_table(
            workloads=[("dc", DataCaching(wss_pages=256))],
            fractions=(0.4,),
        )
        cells = table["dc"][0.4]
        assert cells["v1-RE"] <= cells["v2-ESD"] + 1.0
        ordered = [cells["v2-ESD"], cells["v2-LFSD"], cells["v2-LSSD"]]
        finite = [c for c in ordered if not math.isinf(c)]
        assert finite == sorted(finite)

    def test_fig9_migration_shape(self):
        rows = migration_comparison(vm_pages=500_000,
                                    wss_ratios=(0.2, 0.8))
        for row in rows:
            assert row["zombiestack_s"] < row["native_s"]
        # ZombieStack grows with WSS; native stays roughly flat.
        assert rows[1]["zombiestack_s"] > rows[0]["zombiestack_s"]
        assert rows[1]["native_s"] < rows[0]["native_s"] * 1.5

    def test_table3_values(self):
        table = sz_energy_table()
        assert table["HP"]["Sz"] == pytest.approx(12.67, abs=0.01)
        assert table["Dell"]["Sz"] == pytest.approx(11.15, abs=0.01)
        assert table["HP"]["S0WIBOn"] == pytest.approx(53.84, abs=0.01)


class TestMotivationFigures:
    def test_fig2_ratio_grows_over_the_decade(self):
        series = aws_memory_cpu_ratio()
        early = [r for y, r in series if y <= 2008]
        late = [r for y, r in series if y >= 2014]
        assert max(late) > 2 * (sum(early) / len(early))

    def test_fig3_ratio_drops_30pct_every_two_years(self):
        series = dict(server_capacity_ratio(2005, 2013))
        assert series[2005] == 1.0
        assert series[2007] == pytest.approx(0.7, abs=0.01)
        assert series[2013] < 0.3

    def test_fig3_invalid_range(self):
        with pytest.raises(ValueError):
            server_capacity_ratio(2010, 2005)
