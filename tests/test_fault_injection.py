"""Fault injection: partitions, Wake-on-LAN, crash resilience.

The paper notes that prior remote-memory systems suffered "reduced
reliability in the face of remote server crashes"; ZombieStack's answer is
the local-storage mirror plus striping.  These tests kill servers and links
and check the data survives.
"""

import pytest

from repro.acpi.states import SleepState
from repro.core.rack import Rack
from repro.errors import FencingError, RdmaError, RpcTimeoutError
from repro.hypervisor.vm import VmSpec
from repro.memory.buffers import LOCAL_FALLBACK_S
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import RpcClient, RpcServer
from repro.units import GiB, MiB
from repro.acpi.platform import build_platform


class TestPartitions:
    def _pair(self):
        fabric = Fabric()
        a = fabric.add_node("a")
        b = fabric.add_node("b")
        mr = b.register_mr(4096)
        qp = a.connect_qp("b")
        return fabric, a, b, mr, qp

    def test_partitioned_target_fails_verbs(self):
        fabric, a, _, mr, qp = self._pair()
        fabric.partition("b")
        with pytest.raises(RdmaError):
            a.rdma_read(qp, mr.rkey, 0, 1)

    def test_partitioned_initiator_fails_verbs(self):
        fabric, a, _, mr, qp = self._pair()
        fabric.partition("a")
        with pytest.raises(RdmaError):
            a.rdma_write(qp, mr.rkey, 0, b"x")

    def test_heal_restores_service(self):
        fabric, a, _, mr, qp = self._pair()
        fabric.partition("b")
        fabric.heal("b")
        a.rdma_write(qp, mr.rkey, 0, b"ok")

    def test_partitioned_rpc_server_times_out(self):
        fabric, a, b, _, _ = self._pair()
        server = RpcServer(b)
        server.register("ping", lambda: "pong")
        client = RpcClient(a, server, timeout_s=0.01)
        fabric.partition("b")
        with pytest.raises(RpcTimeoutError):
            client.call("ping")

    def test_partition_unknown_node_rejected(self):
        with pytest.raises(RdmaError):
            Fabric().partition("ghost")


class TestWakeOnLan:
    def _fabric_with(self, state):
        fabric = Fabric()
        fabric.add_node("admin")
        platform = build_platform("srv", memory_bytes=1 * GiB)
        fabric.add_node("srv", platform=platform)
        if state is not SleepState.S0:
            if state is SleepState.SZ:
                platform.go_zombie()
            else:
                platform.suspend(state)
        return fabric, platform

    @pytest.mark.parametrize("state", [SleepState.S3, SleepState.S4,
                                       SleepState.SZ])
    def test_wol_wakes_states_with_nic_standby(self, state):
        fabric, platform = self._fabric_with(state)
        latency = fabric.wake_on_lan("srv")
        assert platform.state is SleepState.S0
        assert latency == state.wake_latency_s

    def test_wol_lost_in_s5(self):
        fabric, platform = self._fabric_with(SleepState.S5)
        with pytest.raises(RdmaError):
            fabric.wake_on_lan("srv")
        assert platform.state is SleepState.S5

    def test_wol_noop_when_awake(self):
        fabric, platform = self._fabric_with(SleepState.S0)
        assert fabric.wake_on_lan("srv") == 0.0

    def test_wol_blocked_by_partition(self):
        fabric, platform = self._fabric_with(SleepState.S3)
        fabric.partition("srv")
        with pytest.raises(RdmaError):
            fabric.wake_on_lan("srv")


class TestCrashResilience:
    def _rack(self):
        rack = Rack(["user", "z1", "z2"], memory_bytes=128 * MiB,
                    buff_size=8 * MiB)
        rack.make_zombie("z1")
        rack.make_zombie("z2")
        vm = rack.create_vm("user", VmSpec("vm", 48 * MiB),
                            local_fraction=0.5)
        hv = rack.server("user").hypervisor
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn, write=True)
        return rack, vm, hv

    def test_zombie_crash_served_from_local_mirror(self):
        """A dead zombie's pages come back from the local backup."""
        rack, vm, hv = self._rack()
        rack.fabric.partition("z1")
        store = hv.store_for("vm")
        # Every demoted page must still be loadable: either the surviving
        # zombie has it, or the local mirror serves it after the failure.
        demoted = [p for p in range(vm.spec.total_pages)
                   if not vm.table.entry(p).present]
        served = 0
        for ppn in demoted:
            key = vm.table.entry(ppn).remote_slot
            location = store._locations[key]
            if location != ("local", 0):
                lease = store._leases[location[0]].lease
                if lease.host == "z1":
                    # dead host: verbs fail; re-home from the mirror
                    with pytest.raises(RdmaError):
                        store.load(key)
                    store.remove_lease(location[0])
            data, elapsed = store.load(key)
            served += 1
        assert served == len(demoted)

    def test_striping_bounds_crash_impact(self):
        """At most ~half the remote pages sit on any single zombie."""
        rack, vm, hv = self._rack()
        store = hv.store_for("vm")
        per_host = {}
        for location in store._locations.values():
            if location == ("local", 0):
                continue
            host = store._leases[location[0]].lease.host
            per_host[host] = per_host.get(host, 0) + 1
        total = sum(per_host.values())
        assert len(per_host) == 2
        assert max(per_host.values()) <= 0.7 * total


class TestHostLossDetection:
    """The recovery coordinator's periodic monitor (no user reports)."""

    def _monitored_rack(self):
        rack = Rack(["user", "z1", "z2"], memory_bytes=128 * MiB,
                    buff_size=8 * MiB)
        rack.make_zombie("z1")
        rack.make_zombie("z2")
        vm = rack.create_vm("user", VmSpec("vm", 48 * MiB),
                            local_fraction=0.5)
        hv = rack.server("user").hypervisor
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn, write=True)
        rack.start_host_monitoring(probe_period_s=0.5, miss_threshold=3)
        return rack, vm, hv

    def test_partitioned_zombie_declared_lost(self):
        from repro.core.events import EventKind
        rack, vm, hv = self._monitored_rack()
        rack.fabric.partition("z1")
        rack.engine.run(until=5.0)
        assert "z1" in rack.recovery.lost_hosts
        incident = rack.recovery.stats_for("z1")[0]
        # 3 misses at 0.5 s probe period: detected around t=1.5 s.
        assert incident.detected_at <= 2.5
        assert incident.buffers_lost > 0
        assert incident.users_affected == 1
        assert rack.events.of_kind(EventKind.HOST_LOST)
        # The controller no longer tracks z1's buffers, the user's store
        # no longer leases from it, and z1 is not a zombie host anymore.
        assert not rack.controller.db.by_host("z1")
        store = hv.store_for("vm")
        assert all(ls.lease.host != "z1" for ls in store._leases.values())
        assert "z1" not in rack.controller.zombie_hosts

    def test_blip_shorter_than_threshold_tolerated(self):
        rack, vm, hv = self._monitored_rack()
        rack.fabric.partition("z1")
        rack.engine.schedule_at(1.0, lambda: rack.fabric.heal("z1"))
        rack.engine.run(until=5.0)
        assert not rack.recovery.lost_hosts
        assert not rack.recovery.incidents

    def test_healed_host_recovered_and_resynced_after_wake(self):
        from repro.core.events import EventKind
        rack, vm, hv = self._monitored_rack()
        rack.fabric.partition("z1")
        rack.engine.run(until=5.0)
        assert "z1" in rack.recovery.lost_hosts
        rack.fabric.heal("z1")
        rack.engine.run(until=12.0)  # breaker cooldown + probes
        assert "z1" not in rack.recovery.lost_hosts
        assert rack.recovery.stats_for("z1")[0].recovered_at is not None
        assert rack.events.of_kind(EventKind.HOST_RECOVERED)
        # Still a zombie (CPU off): the lender-side resync must wait.
        assert "z1" in rack.recovery._pending_resync
        lender = rack.server("z1").manager
        assert lender.lent_bytes > 0  # stale records held across the nap
        rack.wake("z1")
        rack.engine.run(until=14.0)
        assert "z1" not in rack.recovery._pending_resync
        assert lender.lent_bytes == 0  # AS_resync dropped the stale leases

    def test_intentional_suspend_is_not_a_failure(self):
        # Power management parks an idle *active* host in S3; the monitor
        # must not declare it dead (its NIC answers, nothing is lent).
        rack = Rack(["idle", "z"], memory_bytes=64 * MiB, buff_size=8 * MiB)
        rack.make_zombie("z")
        rack.start_host_monitoring(probe_period_s=0.5, miss_threshold=3)
        rack.server("idle").suspend(SleepState.S3)
        rack.engine.run(until=5.0)
        assert not rack.recovery.lost_hosts
        assert not rack.recovery.incidents

    def test_crashed_zombie_reboots_clean(self):
        rack, vm, hv = self._monitored_rack()
        rack.crash_server("z1")
        rack.engine.run(until=5.0)
        assert "z1" in rack.recovery.lost_hosts
        rack.heal_server("z1")
        rack.engine.run(until=12.0)
        assert "z1" not in rack.recovery.lost_hosts
        # The reboot wiped lender state; resync had nothing left to drop.
        assert rack.server("z1").manager.lent_bytes == 0
        assert rack.engine.now >= 12.0
        assert not rack.recovery._pending_resync

    def test_unreachable_user_invalidated_once_it_heals(self):
        # Found by ZomCheck: when a serving host dies while the *user* is
        # also partitioned, the invalidation RPC fails, yet the buffers
        # are purged from the controller database — leaving the user with
        # a lease for memory the controller may re-lend.  The fix queues
        # the invalidation and retries it from probe_tick().
        rack = Rack(["h1", "h2", "h3"], memory_bytes=16 * MiB,
                    buff_size=8 * MiB)
        store = rack.server("h1").manager.request_ext(8 * MiB)
        held = store.lease_ids()
        assert held  # served by h2 or h3
        rack.fabric.partition("h1")
        rack.crash_server("h2")
        stats = rack.recovery.declare_host_lost("h2")
        assert stats.notify_failures == 1
        # The stale lease survives the failed RPC...
        assert store.lease_ids() == held
        rack.fabric.heal("h1")
        # ...and the next probe tick delivers the deferred invalidation.
        rack.recovery.probe_tick()
        assert store.lease_ids() == []
        assert not rack.recovery._pending_invalidate

    @staticmethod
    def _serving_host_of(rack, user):
        return next(h for h in rack.controller.known_hosts
                    if any(d.user == user
                           for d in rack.controller.db.by_host(h)))

    def test_second_incident_merges_owed_invalidations(self):
        # Regression: a second batch of owed ids for the same
        # (user, serving host) pair once *overwrote* ids still owed from
        # an earlier, unflushed incident — silently dropping them, the
        # exact stale-lease bug the queue exists to fix.  It must merge.
        rack = Rack(["h1", "h2", "h3"], memory_bytes=16 * MiB,
                    buff_size=8 * MiB)
        store = rack.server("h1").manager.request_ext(8 * MiB)
        assert store.lease_ids()
        serving = self._serving_host_of(rack, "h1")
        # An earlier incident left id 999 owed for the same pair.
        rack.recovery._pending_invalidate = {"h1": {serving: [999]}}
        rack.fabric.partition("h1")
        rack.crash_server(serving)
        stats = rack.recovery.declare_host_lost(serving)
        assert stats.notify_failures == 1
        owed = rack.recovery._pending_invalidate["h1"][serving]
        assert 999 in owed
        assert set(store.lease_ids()) <= set(owed)

    def test_flush_pending_invalidates_aborts_on_fencing(self):
        # Regression: FencingError subclasses ControllerError, so the
        # retry loop once swallowed it as a routine notify failure — a
        # deposed primary would keep retrying every probe tick forever
        # instead of aborting loudly, as declare_host_lost does.
        rack = Rack(["h1", "h2", "h3"], memory_bytes=16 * MiB,
                    buff_size=8 * MiB)
        rack.server("h1").manager.request_ext(8 * MiB)
        serving = self._serving_host_of(rack, "h1")
        rack.fabric.partition("h1")
        rack.crash_server(serving)
        rack.recovery.declare_host_lost(serving)
        assert rack.recovery._pending_invalidate
        rack.fabric.heal("h1")

        def fenced_call(*args, **kwargs):
            raise FencingError("stale epoch: controller was deposed")

        rack.controller._agent_call = fenced_call
        with pytest.raises(FencingError):
            rack.recovery._flush_pending_invalidates()
        # The owed ids survive for whoever holds the valid epoch.
        assert rack.recovery._pending_invalidate
