"""Frame allocation and page tables."""

import pytest

from repro.errors import (ConfigurationError, OutOfFramesError,
                          PageTableError)
from repro.memory.frames import Frame, FrameAllocator
from repro.memory.page_table import PageLocation, PageTable


class TestFrameAllocator:
    def test_alloc_free_cycle(self):
        alloc = FrameAllocator(4)
        frames = [alloc.alloc() for _ in range(4)]
        assert alloc.free_frames == 0
        assert alloc.used_frames == 4
        for frame in frames:
            alloc.free(frame)
        assert alloc.free_frames == 4

    def test_deterministic_lowest_first(self):
        alloc = FrameAllocator(3)
        assert [alloc.alloc().mfn for _ in range(3)] == [0, 1, 2]

    def test_exhaustion_raises(self):
        alloc = FrameAllocator(1)
        alloc.alloc()
        with pytest.raises(OutOfFramesError):
            alloc.alloc()

    def test_try_alloc_returns_none_when_empty(self):
        alloc = FrameAllocator(1)
        assert alloc.try_alloc() is not None
        assert alloc.try_alloc() is None

    def test_double_free_rejected(self):
        alloc = FrameAllocator(2)
        frame = alloc.alloc()
        alloc.free(frame)
        with pytest.raises(PageTableError):
            alloc.free(frame)

    def test_free_foreign_frame_rejected(self):
        alloc = FrameAllocator(2)
        with pytest.raises(PageTableError):
            alloc.free(Frame(1))

    def test_alloc_many(self):
        alloc = FrameAllocator(10)
        frames = alloc.alloc_many(7)
        assert len(frames) == 7
        assert alloc.free_frames == 3
        alloc.free_many(frames)
        assert alloc.free_frames == 10

    def test_alloc_many_over_capacity(self):
        with pytest.raises(OutOfFramesError):
            FrameAllocator(3).alloc_many(4)

    def test_alloc_many_zero(self):
        assert FrameAllocator(3).alloc_many(0) == []

    def test_free_many_all_or_nothing(self):
        alloc = FrameAllocator(4)
        frames = alloc.alloc_many(2)
        with pytest.raises(PageTableError):
            alloc.free_many(frames + [Frame(99)])
        # nothing was freed by the failing call
        assert alloc.free_frames == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FrameAllocator(-1)

    def test_is_allocated(self):
        alloc = FrameAllocator(2)
        frame = alloc.alloc()
        assert alloc.is_allocated(frame)
        alloc.free(frame)
        assert not alloc.is_allocated(frame)


class TestPageTable:
    def test_entries_start_unallocated(self):
        table = PageTable(16)
        entry = table.entry(3)
        assert entry.location is PageLocation.UNALLOCATED
        assert not entry.present

    def test_map_local_counts_resident(self):
        table = PageTable(16)
        table.map_local(0, Frame(0))
        table.map_local(1, Frame(1))
        assert table.resident_pages == 2
        assert table.entry(0).present

    def test_double_map_rejected(self):
        table = PageTable(16)
        table.map_local(0, Frame(0))
        with pytest.raises(PageTableError):
            table.map_local(0, Frame(1))

    def test_demote_clears_present_and_returns_frame(self):
        table = PageTable(16)
        table.map_local(5, Frame(9))
        frame = table.demote(5, remote_slot=42)
        assert frame.mfn == 9
        entry = table.entry(5)
        assert entry.location is PageLocation.REMOTE
        assert entry.remote_slot == 42
        assert table.resident_pages == 0
        assert table.remote_pages == 1

    def test_demote_nonpresent_rejected(self):
        table = PageTable(16)
        with pytest.raises(PageTableError):
            table.demote(0, remote_slot=1)

    def test_remote_page_promotes_back(self):
        table = PageTable(16)
        table.map_local(5, Frame(1))
        table.demote(5, remote_slot=7)
        table.map_local(5, Frame(2))
        entry = table.entry(5)
        assert entry.present
        assert entry.remote_slot is None
        assert table.remote_pages == 0

    def test_out_of_range_ppn(self):
        table = PageTable(4)
        with pytest.raises(PageTableError):
            table.entry(4)
        with pytest.raises(PageTableError):
            table.entry(-1)

    def test_discard_returns_local_frame(self):
        table = PageTable(8)
        table.map_local(1, Frame(3))
        assert table.discard(1).mfn == 3
        assert table.resident_pages == 0
        assert table.discard(1) is None  # already gone

    def test_discard_remote_adjusts_count(self):
        table = PageTable(8)
        table.map_local(1, Frame(3))
        table.demote(1, remote_slot=0)
        assert table.discard(1) is None
        assert table.remote_pages == 0


class TestAccessedBits:
    def test_map_sets_accessed(self):
        table = PageTable(8)
        table.map_local(0, Frame(0))
        assert table.is_accessed(0)

    def test_clear_is_epoch_bump(self):
        table = PageTable(8)
        table.map_local(0, Frame(0))
        cleared = table.clear_accessed_bits()
        assert cleared == 1  # resident count, the sweep size
        # bits survive exactly one epoch (gradual hand-sweep semantics)
        assert table.is_accessed(0)
        table.clear_accessed_bits()
        assert not table.is_accessed(0)

    def test_mark_accessed_refreshes(self):
        table = PageTable(8)
        table.map_local(0, Frame(0))
        table.clear_accessed_bits()
        table.clear_accessed_bits()
        table.mark_accessed(0)
        assert table.is_accessed(0)

    def test_mark_accessed_nonpresent_rejected(self):
        table = PageTable(8)
        with pytest.raises(PageTableError):
            table.mark_accessed(0)

    def test_dirty_bit(self):
        table = PageTable(8)
        table.map_local(0, Frame(0))
        table.mark_accessed(0, write=True)
        assert table.entry(0).dirty

    def test_demote_resets_bits(self):
        table = PageTable(8)
        table.map_local(0, Frame(0))
        table.mark_accessed(0, write=True)
        table.demote(0, remote_slot=0)
        assert not table.entry(0).dirty

    def test_resident_iteration(self):
        table = PageTable(8)
        for ppn in range(4):
            table.map_local(ppn, Frame(ppn))
        table.demote(2, remote_slot=0)
        assert sorted(e.ppn for e in table.resident()) == [0, 1, 3]
        assert table.known_pages() == 4
