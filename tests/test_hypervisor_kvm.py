"""The modified KVM: VM lifecycle and the RAM Ext fault handler."""

import pytest

from repro.errors import (ConfigurationError, HypervisorError, VmStateError)
from repro.hypervisor.kvm import (FAULT_BASE_S, LOCAL_ACCESS_S, Hypervisor)
from repro.hypervisor.vm import Vm, VmSpec, VmState
from repro.memory.buffers import BufferLease, RemotePageStore
from repro.memory.frames import FrameAllocator
from repro.rdma.fabric import Fabric
from repro.units import PAGE_SIZE


def _env(host_frames=64, lease_pages=32):
    fabric = Fabric()
    user = fabric.add_node("user")
    server = fabric.add_node("server")
    hv = Hypervisor("user", FrameAllocator(host_frames))
    store = RemotePageStore(user)
    mr = server.register_mr(lease_pages * PAGE_SIZE)
    store.add_lease(BufferLease(1, "server", mr.rkey,
                                lease_pages * PAGE_SIZE, zombie=True))
    return hv, store


class TestVmSpec:
    def test_paper_default_vcpus(self):
        assert VmSpec("v", 8 * PAGE_SIZE).vcpus == 8

    def test_invalid_memory(self):
        with pytest.raises(ConfigurationError):
            VmSpec("v", 0)

    def test_total_pages(self):
        assert VmSpec("v", 10 * PAGE_SIZE + 1).total_pages == 11


class TestVmLifecycle:
    def test_legal_transitions(self):
        hv, store = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)
        assert vm.state is VmState.RUNNING
        vm.transition(VmState.PAUSED)
        vm.transition(VmState.RUNNING)
        vm.transition(VmState.MIGRATING)
        vm.transition(VmState.RUNNING)

    def test_illegal_transition_rejected(self):
        hv, _ = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)
        vm.transition(VmState.STOPPED)
        with pytest.raises(VmStateError):
            vm.transition(VmState.RUNNING)

    def test_duplicate_name_rejected(self):
        hv, _ = _env()
        hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)
        with pytest.raises(HypervisorError):
            hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)

    def test_remote_vm_requires_store(self):
        hv, _ = _env()
        with pytest.raises(ConfigurationError):
            hv.create_vm(VmSpec("v", 16 * PAGE_SIZE), 8 * PAGE_SIZE)

    def test_store_must_cover_remote_part(self):
        hv, store = _env(lease_pages=2)
        with pytest.raises(ConfigurationError):
            hv.create_vm(VmSpec("v", 64 * PAGE_SIZE), 8 * PAGE_SIZE,
                         store=store)

    def test_host_frame_limit_enforced(self):
        hv, _ = _env(host_frames=4)
        with pytest.raises(HypervisorError):
            hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)

    def test_destroy_frees_frames(self):
        hv, store = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)
        for ppn in range(8):
            hv.access(vm, ppn)
        free_before = hv.free_frames
        hv.destroy_vm("v")
        assert hv.free_frames == free_before + 8
        with pytest.raises(HypervisorError):
            hv.stats("v")

    def test_destroy_unknown_rejected(self):
        hv, _ = _env()
        with pytest.raises(HypervisorError):
            hv.destroy_vm("ghost")


class TestFaultHandler:
    def test_demand_allocation_on_first_touch(self):
        hv, _ = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)
        cost = hv.access(vm, 0)
        assert cost >= FAULT_BASE_S
        stats = hv.stats("v")
        assert stats.page_faults == 1
        assert stats.demand_allocs == 1

    def test_resident_hit_is_cheap(self):
        hv, _ = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)
        hv.access(vm, 0)
        assert hv.access(vm, 0) == LOCAL_ACCESS_S

    def test_eviction_beyond_local_quota(self):
        hv, store = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 4 * PAGE_SIZE,
                          store=store)
        for ppn in range(8):
            hv.access(vm, ppn)
        stats = hv.stats("v")
        assert stats.evictions == 4
        assert vm.table.resident_pages == 4
        assert vm.table.remote_pages == 4
        assert store.used_slot_count == 4

    def test_remote_fill_round_trip(self):
        hv, store = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 4 * PAGE_SIZE,
                          store=store)
        for ppn in range(8):
            hv.access(vm, ppn)
        # page 0 was demoted (FIFO-ish order under Mixed); touch it again
        demoted = [e.ppn for e in
                   (vm.table.entry(p) for p in range(8)) if not e.present]
        cost = hv.access(vm, demoted[0])
        assert cost > LOCAL_ACCESS_S
        assert hv.stats("v").remote_fills == 1
        assert vm.table.entry(demoted[0]).present

    def test_local_quota_never_exceeded(self):
        hv, store = _env()
        vm = hv.create_vm(VmSpec("v", 16 * PAGE_SIZE), 4 * PAGE_SIZE,
                          store=store)
        for rep in range(3):
            for ppn in range(16):
                hv.access(vm, ppn)
        assert vm.local_frames_used <= vm.local_frames_limit
        assert vm.table.resident_pages == 4

    def test_no_store_and_exhausted_quota_raises(self):
        hv, _ = _env()
        spec = VmSpec("v", 8 * PAGE_SIZE)
        vm = hv.create_vm(spec, 8 * PAGE_SIZE)
        vm.local_frames_limit = 2  # simulate shrunk quota
        hv.access(vm, 0)
        hv.access(vm, 1)
        with pytest.raises(HypervisorError):
            hv.access(vm, 2)

    def test_write_sets_dirty(self):
        hv, _ = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 8 * PAGE_SIZE)
        hv.access(vm, 0, write=True)
        assert vm.table.entry(0).dirty

    def test_time_accounting(self):
        hv, store = _env()
        vm = hv.create_vm(VmSpec("v", 8 * PAGE_SIZE), 4 * PAGE_SIZE,
                          store=store)
        total = sum(hv.access(vm, ppn) for ppn in range(8))
        stats = hv.stats("v")
        assert stats.time_total_s == pytest.approx(total)
        assert stats.time_faults_s <= stats.time_total_s
        assert stats.fault_rate == 1.0  # every access was a first touch

    def test_hot_pages_stay_local(self):
        """The paper's claim: the policy keeps hot pages in local memory."""
        hv, store = _env(host_frames=128, lease_pages=64)
        vm = hv.create_vm(VmSpec("v", 32 * PAGE_SIZE), 8 * PAGE_SIZE,
                          store=store)
        hot = (0, 1)
        for rep in range(30):
            for ppn in hot:
                hv.access(vm, ppn)
            hv.access(vm, 2 + (rep % 30))
        assert vm.table.entry(0).present
        assert vm.table.entry(1).present


class TestPrefetch:
    def _env_with_window(self, window):
        hv, store = _env(host_frames=64, lease_pages=64)
        hv.prefetch_window = window
        vm = hv.create_vm(VmSpec("v", 32 * PAGE_SIZE), 8 * PAGE_SIZE,
                          store=store)
        return hv, vm

    def test_disabled_by_default(self):
        hv, store = _env()
        assert hv.prefetch_window == 0

    def test_sequential_refaults_trigger_prefetch(self):
        hv, vm = self._env_with_window(4)
        for ppn in range(32):          # first touch: no remote fills yet
            hv.access(vm, ppn)
        for ppn in range(32):          # sequential refault pass
            hv.access(vm, ppn)
        stats = hv.stats("v")
        assert stats.prefetches > 0
        assert stats.remote_fills + stats.prefetches >= 24

    def test_random_access_never_prefetches(self):
        hv, vm = self._env_with_window(4)
        import random
        rng = random.Random(3)
        order = list(range(32))
        for _ in range(3):
            rng.shuffle(order)
            broke_sequences = [p for p in order]
            for ppn in broke_sequences:
                hv.access(vm, ppn)
        # Shuffled faults have (almost) no adjacent pairs; the estimator
        # may fire occasionally but must stay marginal.
        stats = hv.stats("v")
        assert stats.prefetches < stats.remote_fills * 0.2

    def test_prefetched_pages_are_resident(self):
        hv, vm = self._env_with_window(8)
        for ppn in range(32):
            hv.access(vm, ppn)
        hv.access(vm, 0)
        hv.access(vm, 1)  # sequential pair: prefetch 2..9 (quota willing)
        stats = hv.stats("v")
        if stats.prefetches:
            assert vm.table.entry(2).present
        assert vm.local_frames_used <= vm.local_frames_limit
