"""The remote page store over leased buffers."""

import pytest

from repro.errors import BufferError_, SwapError
from repro.memory.buffers import LOCAL_FALLBACK_S, BufferLease, RemotePageStore
from repro.rdma.fabric import Fabric
from repro.units import PAGE_SIZE


def _store(lease_pages=(8,), transfer_content=True):
    fabric = Fabric()
    user = fabric.add_node("user")
    server = fabric.add_node("server")
    store = RemotePageStore(user, transfer_content=transfer_content)
    for i, n_pages in enumerate(lease_pages):
        mr = server.register_mr(n_pages * PAGE_SIZE)
        store.add_lease(BufferLease(
            buffer_id=100 + i, host="server", rkey=mr.rkey,
            size_bytes=n_pages * PAGE_SIZE, zombie=True,
        ))
    return fabric, store


class TestStoreLoad:
    def test_content_round_trip(self):
        _, store = _store()
        key, _ = store.store(b"page-content")
        data, _ = store.load(key)
        assert data[:12] == b"page-content"
        assert len(data) == PAGE_SIZE

    def test_zero_page_default(self):
        _, store = _store()
        key, _ = store.store()
        data, _ = store.load(key)
        assert data == bytes(PAGE_SIZE)

    def test_keys_are_stable_and_unique(self):
        _, store = _store()
        keys = [store.store()[0] for _ in range(5)]
        assert len(set(keys)) == 5

    def test_oversized_payload_rejected(self):
        _, store = _store()
        with pytest.raises(SwapError):
            store.store(b"x" * (PAGE_SIZE + 1))

    def test_capacity_enforced(self):
        _, store = _store(lease_pages=(2,))
        store.store()
        store.store()
        with pytest.raises(SwapError):
            store.store()

    def test_free_releases_slot(self):
        _, store = _store(lease_pages=(1,))
        key, _ = store.store()
        store.free(key)
        store.store()  # slot reusable

    def test_unknown_key_rejected(self):
        _, store = _store()
        with pytest.raises(BufferError_):
            store.load(999)
        with pytest.raises(BufferError_):
            store.free(999)

    def test_slot_accounting(self):
        _, store = _store(lease_pages=(4,))
        assert store.total_slots == 4
        store.store()
        assert store.used_slot_count == 1
        assert store.free_slot_count == 3

    def test_fills_leases_in_order(self):
        _, store = _store(lease_pages=(1, 4))
        key1, _ = store.store()
        key2, _ = store.store()
        assert store._locations[key1][0] == 100  # first lease first
        assert store._locations[key2][0] == 101


class TestLeaseManagement:
    def test_duplicate_lease_rejected(self):
        fabric, store = _store()
        lease = store.leases()[0]
        with pytest.raises(BufferError_):
            store.add_lease(lease)

    def test_remove_unknown_lease_rejected(self):
        _, store = _store()
        with pytest.raises(BufferError_):
            store.remove_lease(999)

    def test_lease_ids(self):
        _, store = _store(lease_pages=(2, 2))
        assert store.lease_ids() == [100, 101]


class TestRevocation:
    def test_pages_rehome_to_remaining_lease(self):
        _, store = _store(lease_pages=(2, 4))
        key, _ = store.store(b"survivor")
        fallbacks = store.remove_lease(100)
        assert fallbacks == 0
        data, _ = store.load(key)
        assert data[:8] == b"survivor"

    def test_fallback_to_local_backup_when_full(self):
        _, store = _store(lease_pages=(2,))
        key, _ = store.store(b"precious")
        fallbacks = store.remove_lease(100)
        assert fallbacks == 1
        data, elapsed = store.load(key)
        assert data[:8] == b"precious"
        assert elapsed == LOCAL_FALLBACK_S
        assert store.local_fallback_loads == 1

    def test_fallback_key_still_freeable(self):
        _, store = _store(lease_pages=(1,))
        key, _ = store.store(b"x")
        store.remove_lease(100)
        store.free(key)
        with pytest.raises(BufferError_):
            store.load(key)

    def test_double_revocation_rehomes_with_correct_keys(self):
        _, store = _store(lease_pages=(1, 1, 1))
        key, _ = store.store(b"wander")
        store.remove_lease(100)   # rehomes to 101
        store.remove_lease(101)   # rehomes to 102
        data, _ = store.load(key)
        assert data[:6] == b"wander"


class TestFastMode:
    def test_timing_only_mode_keeps_accounting(self):
        _, store = _store(lease_pages=(4,), transfer_content=False)
        key, elapsed = store.store(b"ignored")
        assert elapsed > 0
        data, _ = store.load(key)
        assert data == bytes(0)  # no content moved
        assert store.pages_stored == 1
        assert store.pages_loaded == 1

    def test_fast_mode_still_power_gated(self):
        from repro.acpi.platform import build_platform
        from repro.acpi.states import SleepState
        from repro.errors import RdmaError
        from repro.units import GiB
        fabric = Fabric()
        user = fabric.add_node("user")
        platform = build_platform("server", memory_bytes=1 * GiB)
        server = fabric.add_node("server", platform=platform)
        mr = server.register_mr(4 * PAGE_SIZE)
        store = RemotePageStore(user, transfer_content=False)
        store.add_lease(BufferLease(1, "server", mr.rkey,
                                    4 * PAGE_SIZE, zombie=False))
        key, _ = store.store()
        platform.suspend(SleepState.S3)
        with pytest.raises(RdmaError):
            store.load(key)
