"""Workload generators and the stream driver."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import DeterministicRng
from repro.workloads.driver import WorkloadResult, run_stream
from repro.workloads.macro import (DataCaching, Elasticsearch, MacroBenchmark,
                                   MACRO_BENCHMARKS, SparkSql)
from repro.workloads.microbench import MicroBenchmark
from repro.workloads.patterns import (hot_cold_stream, sequential_scan,
                                      sliding_window_scan, zipf_stream)


class TestPatterns:
    def test_sliding_window_covers_whole_array(self):
        rng = DeterministicRng(1)
        touched = {ppn for ppn, _ in
                   sliding_window_scan(100, rng, passes=1, hot_prob=0.0)}
        assert touched == set(range(100))

    def test_sliding_window_deterministic(self):
        a = list(sliding_window_scan(50, DeterministicRng(2), passes=2))
        b = list(sliding_window_scan(50, DeterministicRng(2), passes=2))
        assert a == b

    def test_hot_set_gets_extra_accesses(self):
        rng = DeterministicRng(1)
        counts = {}
        for ppn, _ in sliding_window_scan(100, rng, passes=2, hot_frac=0.1,
                                          hot_prob=0.5):
            counts[ppn] = counts.get(ppn, 0) + 1
        hot_mean = sum(counts.get(p, 0) for p in range(10)) / 10
        cold_mean = sum(counts.get(p, 0) for p in range(50, 100)) / 50
        assert hot_mean > cold_mean * 1.5

    def test_zipf_stream_length_and_range(self):
        stream = list(zipf_stream(64, 500, DeterministicRng(1)))
        assert len(stream) == 500
        assert all(0 <= ppn < 64 for ppn, _ in stream)

    def test_hot_cold_stream_skew(self):
        stream = list(hot_cold_stream(100, 2000, DeterministicRng(1),
                                      hot_frac=0.1, hot_prob=0.9))
        hot_hits = sum(1 for ppn, _ in stream if ppn < 10)
        assert hot_hits > 1500

    def test_sequential_scan(self):
        stream = list(sequential_scan(5, passes=2))
        assert [ppn for ppn, _ in stream] == list(range(5)) * 2

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            list(sliding_window_scan(0, DeterministicRng(1)))
        with pytest.raises(ConfigurationError):
            list(zipf_stream(-1, 10, DeterministicRng(1)))


class TestMicroBenchmark:
    def test_stream_is_reproducible(self):
        micro = MicroBenchmark(wss_pages=64, passes=2)
        assert list(micro.stream()) == list(micro.stream())

    def test_compute_cost_positive(self):
        assert MicroBenchmark(wss_pages=8).compute_s > 0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            MicroBenchmark(wss_pages=0)


class TestMacroBenchmarks:
    def test_factory_table(self):
        for name, factory in MACRO_BENCHMARKS.items():
            bench = factory(wss_pages=128)
            assert bench.wss_pages == 128
            assert bench.operations == bench.ops_factor * 128

    def test_relative_skew(self):
        """Data caching is the most skewed, Spark the most scan-heavy."""
        dc, es, sp = DataCaching(), Elasticsearch(), SparkSql()
        assert dc.alpha >= es.alpha >= sp.alpha
        assert sp.scan_frac > es.scan_frac >= dc.scan_frac

    def test_stream_length_matches_operations(self):
        bench = DataCaching(wss_pages=64)
        assert len(list(bench.stream())) == bench.operations

    def test_with_wss_rescales(self):
        bench = SparkSql(wss_pages=100).with_wss(50)
        assert bench.wss_pages == 50
        assert bench.name == "Spark SQL"

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            MacroBenchmark("bad", 0, alpha=1.0, scan_frac=0.0, compute_s=0.0)
        with pytest.raises(ConfigurationError):
            MacroBenchmark("bad", 10, alpha=1.0, scan_frac=1.5, compute_s=0.0)


class TestDriver:
    def test_integrates_memory_and_compute(self):
        result = run_stream([(0, False), (1, True)],
                            lambda ppn, w: 0.5, compute_s=0.25)
        assert result.accesses == 2
        assert result.memory_time_s == pytest.approx(1.0)
        assert result.compute_time_s == pytest.approx(0.5)
        assert result.sim_time_s == pytest.approx(1.5)

    def test_ops_per_second(self):
        result = WorkloadResult(accesses=100, sim_time_s=2.0,
                                memory_time_s=1.0, compute_time_s=1.0)
        assert result.ops_per_second == 50.0

    def test_penalty(self):
        base = WorkloadResult(10, 1.0, 0.5, 0.5)
        slow = WorkloadResult(10, 1.5, 1.0, 0.5)
        assert slow.penalty_vs(base) == pytest.approx(0.5)

    def test_penalty_against_zero_baseline_rejected(self):
        base = WorkloadResult(0, 0.0, 0.0, 0.0)
        with pytest.raises(ConfigurationError):
            base.penalty_vs(base)

    def test_negative_compute_rejected(self):
        with pytest.raises(ConfigurationError):
            run_stream([], lambda p, w: 0.0, compute_s=-1.0)
