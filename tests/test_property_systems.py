"""Property-based tests on the higher system layers.

- a swap device is a faithful key-value store of pages under any op mix;
- the cluster model never over-commits CPU or local memory;
- the controller's pool accounting balances across any lend/alloc/release
  interleaving;
- the sliding-window scan covers the whole array exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.cloud.model import ClusterModel, VmInstance
from repro.core.controller import GlobalMemoryController
from repro.core.protocol import BufferDescriptor, BufferKind
from repro.errors import PlacementError, ReproError
from repro.memory.swap import SsdSwap
from repro.rdma.fabric import Fabric
from repro.sim.rng import DeterministicRng
from repro.units import MiB
from repro.workloads.patterns import sliding_window_scan


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["out", "in", "discard"]),
                              st.integers(0, 9),
                              st.binary(min_size=0, max_size=8)),
                    max_size=60))
def test_swap_device_is_a_faithful_page_store(ops):
    device = SsdSwap(capacity_pages=16)
    shadow = {}
    for op, key, payload in ops:
        try:
            if op == "out":
                device.swap_out(key, payload)
                shadow[key] = payload
            elif op == "in":
                data, _ = device.swap_in(key)
                assert data == shadow.pop(key)
            else:
                device.discard(key)
                del shadow[key]
        except ReproError:
            # invalid op for the current state; shadow must agree
            if op == "out":
                assert key in shadow or len(shadow) >= 16
            else:
                assert key not in shadow
        except KeyError:
            assert not device.contains(key)
    assert device.used_pages == len(shadow)
    for key, payload in shadow.items():
        assert device.contains(key)


@settings(max_examples=40, deadline=None)
@given(vms=st.lists(st.tuples(st.floats(0.01, 0.6, allow_nan=False),
                              st.floats(0.01, 0.6, allow_nan=False),
                              st.floats(0.3, 1.0, allow_nan=False)),
                    max_size=20))
def test_cluster_never_overcommits(vms):
    cluster = ClusterModel(["h1", "h2", "h3"])
    hosts = list(cluster.hosts.values())
    for index, (cpu, mem, local_frac) in enumerate(vms):
        vm = VmInstance(f"vm{index}", cpu_request=round(cpu, 4),
                        mem_request=round(mem, 4),
                        local_mem_fraction=round(local_frac, 4))
        host = hosts[index % 3]
        try:
            host.add_vm(vm)
        except PlacementError:
            pass
    for host in hosts:
        assert host.cpu_booked <= host.cpu_capacity + 1e-6
        assert host.mem_booked_local <= host.mem_capacity + 1e-6
        assert host.free_cpu >= -1e-6
        assert host.free_mem >= -1e-6


@settings(max_examples=25, deadline=None)
@given(script=st.lists(st.sampled_from(["lend", "ext", "swap", "release"]),
                       max_size=30))
def test_controller_pool_accounting_balances(script):
    fabric = Fabric()
    controller = GlobalMemoryController(fabric.add_node("ctr"),
                                        buff_size=MiB)
    next_buffer = [1]
    granted_by_user = []

    for op in script:
        if op == "lend":
            bid = next_buffer[0]
            next_buffer[0] += 1
            controller.gs_goto_zombie("zom", [BufferDescriptor(
                buffer_id=bid, host="zom", offset=0, size_bytes=MiB,
                kind=BufferKind.ZOMBIE, rkey=bid)])
        elif op in ("ext", "swap"):
            try:
                if op == "ext":
                    got = controller.gs_alloc_ext("user", MiB)
                else:
                    got = controller.gs_alloc_swap("user", MiB)
            except ReproError:
                continue
            granted_by_user.extend(b.buffer_id for b in got)
        elif op == "release" and granted_by_user:
            controller.gs_release("user", [granted_by_user.pop()])

    total = controller.db.total_bytes()
    free = controller.db.free_bytes()
    allocated = sum(b.size_bytes for b in controller.db.all_buffers()
                    if b.allocated)
    assert total == free + allocated
    assert len(granted_by_user) == allocated // MiB


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 200),
       window=st.floats(0.1, 1.0, allow_nan=False),
       slide=st.floats(0.05, 1.0, allow_nan=False),
       seed=st.integers(0, 1000))
def test_sliding_window_covers_everything_exactly(n, window, slide, seed):
    rng = DeterministicRng(seed)
    touched = set()
    for ppn, _ in sliding_window_scan(n, rng, window_frac=window,
                                      slide_frac=slide, passes=1,
                                      hot_prob=0.0):
        assert 0 <= ppn < n
        touched.add(ppn)
    assert touched == set(range(n))
