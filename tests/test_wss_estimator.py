"""Working-set estimation via accessed-bit sampling."""

import pytest

from repro.core.rack import Rack
from repro.errors import ConfigurationError
from repro.hypervisor.vm import VmSpec
from repro.hypervisor.wss import WssEstimator
from repro.units import MiB, PAGE_SIZE


@pytest.fixture
def env():
    rack = Rack(["host"], memory_bytes=128 * MiB, buff_size=8 * MiB)
    vm = rack.create_vm("host", VmSpec("vm", 16 * MiB), local_fraction=1.0)
    hv = rack.server("host").hypervisor
    return hv, vm


def _touch(hv, vm, pages):
    for ppn in pages:
        hv.access(vm, ppn)


class TestSampling:
    def test_counts_touched_pages(self, env):
        hv, vm = env
        _touch(hv, vm, range(512))  # make them resident first
        estimator = WssEstimator(vm)
        estimator.begin_window()
        _touch(hv, vm, range(100))
        assert estimator.end_window() == 100

    def test_untouched_resident_pages_excluded(self, env):
        hv, vm = env
        _touch(hv, vm, range(512))
        estimator = WssEstimator(vm)
        estimator.begin_window()
        assert estimator.end_window() == 0

    def test_freshly_faulted_pages_count(self, env):
        hv, vm = env
        estimator = WssEstimator(vm)
        estimator.begin_window()
        _touch(hv, vm, range(64))  # demand-allocated inside the window
        assert estimator.end_window() == 64

    def test_ewma_smooths_quiet_windows(self, env):
        hv, vm = env
        _touch(hv, vm, range(512))
        estimator = WssEstimator(vm, alpha=0.3)
        estimator.begin_window()
        _touch(hv, vm, range(400))
        estimator.end_window()
        estimator.begin_window()
        estimator.end_window()  # a quiet interval
        assert 200 < estimator.wss_pages < 400  # did not collapse to zero

    def test_estimate_converges_to_steady_state(self, env):
        hv, vm = env
        estimator = WssEstimator(vm, alpha=0.5)
        for _ in range(6):
            estimator.begin_window()
            _touch(hv, vm, range(300))
            estimator.end_window()
        assert estimator.wss_pages == pytest.approx(300, abs=10)
        assert estimator.wss_bytes == estimator.wss_pages * PAGE_SIZE

    def test_no_sample_falls_back_to_resident(self, env):
        hv, vm = env
        _touch(hv, vm, range(128))
        estimator = WssEstimator(vm)
        assert estimator.wss_pages == 128

    def test_end_without_begin_rejected(self, env):
        hv, vm = env
        with pytest.raises(ConfigurationError):
            WssEstimator(vm).end_window()

    def test_invalid_alpha(self, env):
        hv, vm = env
        with pytest.raises(ConfigurationError):
            WssEstimator(vm, alpha=0.0)


class TestPlacementRequirement:
    def test_thirty_percent_rule(self, env):
        hv, vm = env
        estimator = WssEstimator(vm, alpha=1.0)
        estimator.begin_window()
        _touch(hv, vm, range(1000))
        estimator.end_window()
        need = estimator.placement_requirement(0.3)
        assert need == pytest.approx(0.3 * 1000 * PAGE_SIZE, rel=0.01)

    def test_fraction_of_reserved(self, env):
        hv, vm = env
        estimator = WssEstimator(vm, alpha=1.0)
        estimator.begin_window()
        _touch(hv, vm, range(vm.spec.total_pages // 2))
        estimator.end_window()
        assert estimator.wss_fraction == pytest.approx(0.5, abs=0.01)

    def test_invalid_fraction(self, env):
        hv, vm = env
        with pytest.raises(ConfigurationError):
            WssEstimator(vm).placement_requirement(0.0)
