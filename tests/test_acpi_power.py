"""Power rails, domains and the board plane."""

import pytest

from repro.acpi.power import (CPU_DOMAIN, MEMORY_DOMAIN, PowerDomain,
                              PowerPlane, PowerRail)
from repro.errors import ConfigurationError, PowerStateError


def _plane(split=True):
    plane = PowerPlane()
    if split:
        plane.add_domain(PowerDomain(CPU_DOMAIN, [PowerRail("vcore", 4.0)]))
        plane.add_domain(PowerDomain(MEMORY_DOMAIN, [PowerRail("vdimm", 1.0)]))
    else:
        shared = PowerDomain(CPU_DOMAIN, [PowerRail("shared", 5.0)])
        plane.add_domain(shared)
        plane.domains[MEMORY_DOMAIN] = shared
    return plane


class TestPowerRail:
    def test_draw_when_on(self):
        assert PowerRail("r", 3.5).power_draw() == 3.5

    def test_no_draw_when_off(self):
        rail = PowerRail("r", 3.5)
        rail.on = False
        assert rail.power_draw() == 0.0


class TestPowerDomain:
    def test_switch_affects_all_rails(self):
        domain = PowerDomain("d", [PowerRail("a", 1.0), PowerRail("b", 2.0)])
        domain.switch(False)
        assert not domain.energised
        assert domain.power_draw() == 0.0
        domain.switch(True)
        assert domain.energised
        assert domain.power_draw() == 3.0

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerDomain("empty", [])


class TestPowerPlane:
    def test_split_detection(self):
        assert _plane(split=True).split_cpu_memory
        assert not _plane(split=False).split_cpu_memory

    def test_require_split_raises_on_legacy_board(self):
        with pytest.raises(PowerStateError):
            _plane(split=False).require_split()

    def test_shared_domain_counted_once_in_power(self):
        plane = _plane(split=False)
        assert plane.power_draw() == 5.0

    def test_duplicate_domain_rejected(self):
        plane = _plane()
        with pytest.raises(ConfigurationError):
            plane.add_domain(PowerDomain(CPU_DOMAIN, [PowerRail("x", 1.0)]))

    def test_unknown_domain_lookup(self):
        with pytest.raises(ConfigurationError):
            _plane().domain("nonexistent")

    def test_report_reflects_switching(self):
        plane = _plane()
        plane.switch(CPU_DOMAIN, False)
        report = plane.report()
        assert report[CPU_DOMAIN] is False
        assert report[MEMORY_DOMAIN] is True

    def test_independent_switching_is_the_sz_prerequisite(self):
        plane = _plane(split=True)
        plane.switch(CPU_DOMAIN, False)
        assert plane.domain(MEMORY_DOMAIN).energised
