"""Secondary-controller HA and the remote-mem-mgr agent."""

import pytest

from repro.acpi.states import SleepState
from repro.core.controller import GlobalMemoryController
from repro.core.manager import RemoteMemoryManager
from repro.core.protocol import Method
from repro.core.rack import Rack
from repro.core.secondary import SecondaryController
from repro.errors import (BufferError_, ControllerError, FailoverError,
                          FencingError)
from repro.hypervisor.vm import VmSpec
from repro.memory.frames import FrameAllocator
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import RpcClient
from repro.sim.engine import Engine
from repro.units import MiB, PAGE_SIZE

BUFF = 4 * MiB
BUFF_PAGES = BUFF // PAGE_SIZE


def _wired(lender_pages=4 * BUFF_PAGES, user_pages=4 * BUFF_PAGES):
    """Controller + secondary + two managers, fully wired on one fabric."""
    engine = Engine()
    fabric = Fabric()
    ctr_node = fabric.add_node("ctr")
    sec_node = fabric.add_node("sec")
    controller = GlobalMemoryController(ctr_node, buff_size=BUFF)
    secondary = SecondaryController(sec_node, engine,
                                    heartbeat_period_s=1.0, miss_threshold=3)
    controller.mirror = secondary.attach_rpc_mirror(
        RpcClient(ctr_node, secondary.rpc)
    )
    secondary.watch(RpcClient(sec_node, controller.rpc))

    managers = {}
    for name, pages in (("lender", lender_pages), ("user", user_pages)):
        node = fabric.add_node(name)
        manager = RemoteMemoryManager(name, node, FrameAllocator(pages),
                                      buff_size=BUFF)
        manager.attach_controller(RpcClient(node, controller.rpc))
        controller.attach_agent(name, RpcClient(ctr_node, manager.rpc))
        managers[name] = manager
    return engine, fabric, controller, secondary, managers


class TestManagerLending:
    def test_delegate_for_zombie_lends_all_free_memory(self):
        _, _, ctr, _, mgrs = _wired()
        count = mgrs["lender"].delegate_for_zombie()
        assert count == 4
        assert mgrs["lender"].lent_bytes == 4 * BUFF
        assert mgrs["lender"].allocator.free_frames == 0
        assert "lender" in ctr.zombie_hosts

    def test_as_get_free_mem_keeps_a_reserve(self):
        _, _, _, _, mgrs = _wired()
        lender = mgrs["lender"]
        lender.lend_reserve_fraction = 0.25
        descriptors = lender.as_get_free_mem()
        assert len(descriptors) == 3  # 75 % of 4 buffers worth
        assert lender.allocator.free_frames == BUFF_PAGES

    def test_reclaim_returns_frames(self):
        _, _, _, _, mgrs = _wired()
        lender = mgrs["lender"]
        lender.delegate_for_zombie()
        recovered = lender.reclaim(2)
        assert recovered == 2 * BUFF
        assert lender.allocator.free_frames == 2 * BUFF_PAGES

    def test_reclaim_all(self):
        _, _, ctr, _, mgrs = _wired()
        lender = mgrs["lender"]
        lender.delegate_for_zombie()
        lender.reclaim_all()
        assert lender.lent_bytes == 0
        assert len(ctr.db) == 0

    def test_reclaim_bytes_rounds_to_buffers(self):
        _, _, _, _, mgrs = _wired()
        lender = mgrs["lender"]
        lender.delegate_for_zombie()
        recovered = lender.reclaim_bytes(BUFF + 1)
        assert recovered == 2 * BUFF

    def test_detached_manager_raises(self):
        fabric = Fabric()
        node = fabric.add_node("orphan")
        manager = RemoteMemoryManager("orphan", node, FrameAllocator(16))
        with pytest.raises(ControllerError):
            manager.delegate_for_zombie()


class TestManagerUserSide:
    def test_request_ext_builds_store(self):
        _, _, _, _, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        store = mgrs["user"].request_ext(2 * BUFF)
        assert store.total_slots == 2 * BUFF_PAGES
        key, _ = store.store(b"hello")
        assert store.load(key)[0][:5] == b"hello"

    def test_request_swap_best_effort(self):
        _, _, _, _, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        store, granted = mgrs["user"].request_swap(100 * BUFF)
        assert granted <= 4 * BUFF

    def test_extend_swap_adds_leases(self):
        _, _, _, _, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        store, granted = mgrs["user"].request_swap(BUFF)
        extra = mgrs["user"].extend_swap(store, BUFF)
        assert extra == BUFF
        assert len(store.lease_ids()) == 2

    def test_release_store_frees_pool(self):
        _, _, ctr, _, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        store = mgrs["user"].request_ext(2 * BUFF)
        mgrs["user"].release_store(store)
        assert ctr.db.free_bytes() == 4 * BUFF

    def test_us_reclaim_rehomes_pages(self):
        _, _, ctr, _, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        store = mgrs["user"].request_ext(2 * BUFF)
        key, _ = store.store(b"survive-this")
        victim = store.lease_ids()[0]
        mgrs["user"].us_reclaim([victim])
        assert store.load(key)[0][:12] == b"survive-this"
        assert mgrs["user"].reclaims_served == 1

    def test_controller_driven_reclaim_end_to_end(self):
        """The full wake path: lender reclaims, user's pages survive."""
        _, _, _, _, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        store = mgrs["user"].request_ext(2 * BUFF)
        key, _ = store.store(b"data")
        mgrs["lender"].reclaim(4)  # revokes the user's buffers via US_reclaim
        data, _ = store.load(key)
        assert data[:4] == b"data"
        assert store.local_fallback_loads >= 0  # may or may not fall back
        assert mgrs["lender"].allocator.free_frames == 4 * BUFF_PAGES


class TestMirroringAndFailover:
    def test_secondary_tracks_state(self):
        _, _, ctr, sec, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        assert len(sec.db) == len(ctr.db)
        assert sec.zombie_hosts == ctr.zombie_hosts

    def test_heartbeat_keeps_secondary_quiet(self):
        engine, _, _, sec, _ = _wired()
        engine.run(until=10.0)
        assert sec.heartbeats_ok == 10
        assert sec.promoted is None

    def test_failover_after_missed_heartbeats(self):
        engine, _, ctr, sec, _ = _wired()
        promoted = []
        sec.on_failover = lambda s: promoted.append(s.promote(BUFF))
        ctr.rpc.unregister(Method.HEARTBEAT.value)  # crash the primary
        engine.run(until=10.0)
        assert len(promoted) == 1
        assert promoted[0].db is not ctr.db

    def test_promoted_controller_has_mirrored_state(self):
        engine, _, ctr, sec, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        store = mgrs["user"].request_ext(BUFF)
        new_ctr = sec.promote(BUFF)
        assert len(new_ctr.db) == len(ctr.db)
        assert new_ctr.zombie_hosts == {"lender"}
        allocated = [b for b in new_ctr.db.all_buffers() if b.allocated]
        assert len(allocated) == 1

    def test_double_promotion_rejected(self):
        _, _, _, sec, _ = _wired()
        sec.promote(BUFF)
        with pytest.raises(FailoverError):
            sec.promote(BUFF)

    def test_promotion_preserves_known_hosts(self):
        """Active (non-zombie) hosts must survive a failover too."""
        _, _, _, sec, mgrs = _wired()
        mgrs["lender"].delegate_for_zombie()
        assert sec.known_hosts == {"lender", "user"}
        new_ctr = sec.promote(BUFF)
        assert new_ctr.known_hosts == {"lender", "user"}
        assert new_ctr.zombie_hosts == {"lender"}

    def test_promotion_reattaches_agents(self):
        _, fabric, _, sec, mgrs = _wired()
        clients = {name: RpcClient(sec.node, mgr.rpc)
                   for name, mgr in mgrs.items()}
        new_ctr = sec.promote(BUFF, agent_clients=clients)
        assert set(new_ctr.agent_clients) == {"lender", "user"}


class TestMirrorCatchUp:
    def test_deferred_mirror_op_is_resent_not_lost(self):
        # Lose the *reply* of one mirror op: the secondary applies it, the
        # primary times out.  Before the sequenced mirror log, that op's
        # journal suffix was silently skipped forever and the standby
        # diverged; now the next emission re-sends it and the secondary
        # skips the already-applied sequence number.
        from repro.rdma.fabric import REPLY_LOSS
        engine, fabric, ctr, sec, mgrs = _wired()
        fabric.message_faults.script("ctr", "sec", REPLY_LOSS,
                                     method=Method.MIRROR_OP.value)
        mgrs["lender"].delegate_for_zombie()  # emits a stream of ops
        assert ctr.mirror_deferred >= 1
        assert sec.mirror_skips >= 1
        assert ctr.mirror_lag == 0
        assert len(sec.db) == len(ctr.db)
        assert {b.buffer_id for b in sec.db.all_buffers()} == \
            {b.buffer_id for b in ctr.db.all_buffers()}
        assert sec.zombie_hosts == ctr.zombie_hosts

    def test_partitioned_standby_queues_ops_and_catches_up(self):
        engine, fabric, ctr, sec, mgrs = _wired()
        fabric.partition("sec")
        mgrs["lender"].delegate_for_zombie()  # must not fail the primary
        assert ctr.mirror_lag > 0
        assert len(sec.db) == 0
        fabric.heal("sec")
        # No further mutations: the standby's next heartbeat probe
        # piggybacks the replication catch-up.
        engine.run(until=1.5)
        assert ctr.mirror_lag == 0
        assert len(sec.db) == len(ctr.db)
        assert sec.zombie_hosts == ctr.zombie_hosts


class TestFencingEpochs:
    def test_stale_mirror_op_rejected(self):
        _, _, _, sec, _ = _wired()
        sec.apply_mirror("zombie_add", ("h1",), epoch=1)
        sec.promote(BUFF)  # epoch 1 -> 2
        with pytest.raises(FencingError):
            sec.apply_mirror("zombie_add", ("h2",), epoch=1)
        sec.apply_mirror("zombie_add", ("h2",), epoch=2)  # current: fine
        assert "h2" in sec.zombie_hosts

    def test_epochless_mirror_op_bypasses_fence(self):
        """Unit-test wiring (no epoch_fn) keeps working after promote."""
        _, _, _, sec, _ = _wired()
        sec.promote(BUFF)
        sec.apply_mirror("zombie_add", ("h1",))
        assert "h1" in sec.zombie_hosts

    def test_manager_rejects_stale_epoch(self):
        _, _, _, _, mgrs = _wired()
        user = mgrs["user"]
        assert user.heartbeat(epoch=2) == "alive"
        with pytest.raises(FencingError):
            user.heartbeat(epoch=1)
        with pytest.raises(FencingError):
            user.us_reclaim([], epoch=1)
        assert user.heartbeat(epoch=2) == "alive"  # watermark kept

    def test_agent_call_from_deposed_controller_fences_it(self):
        _, _, ctr, sec, mgrs = _wired()
        mgrs["user"].heartbeat(epoch=sec.epoch + 1)  # rack learned epoch 2
        assert not ctr.fenced
        with pytest.raises(FencingError):
            ctr._agent_call("user", Method.HEARTBEAT)  # stamps epoch 1
        assert ctr.fenced
        # Once fenced, every guarded handler rejects — even via RPC.
        client = RpcClient(ctr.node, ctr.rpc)
        with pytest.raises(FencingError):
            client.call(Method.GS_ALLOC_SWAP.value, "user", BUFF)


class TestRackFailoverEndToEnd:
    def _rack(self):
        rack = Rack(["user", "z1"], memory_bytes=64 * MiB, buff_size=4 * MiB)
        rack.make_zombie("z1")
        hv = rack.server("user").hypervisor
        hv.content_mode = True
        vm = rack.create_vm("user", VmSpec("cvm", 16 * MiB),
                            local_fraction=0.5)
        hv.store_for("cvm").transfer_content = True
        for ppn in range(vm.spec.total_pages):
            hv.write_page(vm, ppn, b"failover-%04d" % ppn)
        return rack, hv, vm

    def test_promote_reattach_and_fence_old_primary(self):
        rack, hv, vm = self._rack()
        old = rack.controller
        old_epoch = old.epoch
        rack.kill_controller()
        rack.engine.run(until=10.0)

        # The secondary promoted and the rack switched over.
        new = rack.controller
        assert new is not old
        assert new.epoch == old_epoch + 1
        assert rack.secondary.promoted is new
        assert new.known_hosts == {"user", "z1"}
        assert new.zombie_hosts == {"z1"}

        # Old allocations keep working: content survives the failover.
        for ppn in range(vm.spec.total_pages):
            assert hv.read_page(vm, ppn) == b"failover-%04d" % ppn

        # New allocations go through the promoted controller.
        vm2 = rack.create_vm("user", VmSpec("post", 8 * MiB),
                             local_fraction=0.5)
        assert vm2.spec.name == "post"
        assert new.db.by_user("user")

        # The healed old primary is fenced on first contact: its stale
        # epoch is rejected by the agent, and it stops serving.
        with pytest.raises(FencingError):
            old._agent_call("user", Method.HEARTBEAT)
        assert old.fenced
        with pytest.raises(FencingError):
            RpcClient(old.node, old.rpc).call(
                Method.GS_ALLOC_SWAP.value, "user", 4 * MiB
            )
        # Its mirror stream is stale too: the secondary refuses the write.
        with pytest.raises(FencingError):
            old._emit("zombie_add", ("rogue",))
        assert "rogue" not in rack.secondary.zombie_hosts

    def test_recovery_coordinator_survives_failover(self):
        rack, hv, vm = self._rack()
        rack.kill_controller()
        rack.engine.run(until=10.0)
        assert rack.controller.recovery is rack.recovery
        # Losing the zombie after the failover still invalidates cleanly.
        rack.crash_server("z1")
        assert rack.server("user").manager.report_host_failure("z1")
        assert "z1" in rack.recovery.lost_hosts
        for ppn in range(vm.spec.total_pages):
            assert hv.read_page(vm, ppn) == b"failover-%04d" % ppn
