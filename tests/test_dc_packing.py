"""Bin packing, and its agreement with the Fig. 10 aggregate model."""

import pytest

from repro.dc.energy_sim import plan_neat, plan_zombiestack
from repro.dc.datacenter import aggregate_demand
from repro.dc.packing import (first_fit_decreasing, pack_neat,
                              pack_zombiestack, tasks_active_at)
from repro.errors import ConfigurationError
from repro.traces.google import generate_trace
from repro.traces.schema import TraceConfig
from repro.units import HOUR


class TestFirstFitDecreasing:
    def test_single_item(self):
        result = first_fit_decreasing([(0.5, 0.5)])
        assert result.hosts_used == 1
        assert result.unplaced == 0

    def test_perfect_pairs(self):
        items = [(0.4, 0.4)] * 4  # two per host at 0.8/0.9 caps
        assert first_fit_decreasing(items).hosts_used == 2

    def test_memory_bound_packing(self):
        items = [(0.1, 0.8)] * 4  # memory forbids sharing
        assert first_fit_decreasing(items).hosts_used == 4

    def test_above_ceiling_gets_dedicated_host(self):
        """Items over the headroom ceiling but within raw capacity run on
        a host of their own, marked full."""
        result = first_fit_decreasing([(0.9, 0.1), (0.1, 0.1)], cpu_cap=0.8)
        assert result.hosts_used == 2
        assert result.unplaced == 0

    def test_item_over_raw_capacity_unplaced(self):
        result = first_fit_decreasing([(1.4, 0.1)], cpu_cap=0.8)
        assert result.unplaced == 1
        assert result.hosts_used == 0

    def test_max_hosts_cap(self):
        result = first_fit_decreasing([(0.5, 0.5)] * 3, max_hosts=2)
        assert result.hosts_used == 2
        assert result.unplaced == 1

    def test_fill_metrics(self):
        result = first_fit_decreasing([(0.8, 0.45)], cpu_cap=0.8,
                                      mem_cap=0.9)
        assert result.cpu_fill == pytest.approx(1.0)
        assert result.mem_fill == pytest.approx(0.5)

    def test_invalid_caps(self):
        with pytest.raises(ConfigurationError):
            first_fit_decreasing([], cpu_cap=0.0)


class TestAggregateModelValidation:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceConfig(n_servers=150, duration_days=1.0,
                                          seed=5))

    def test_neat_aggregate_tracks_real_packing(self, trace):
        """The aggregate estimate stays within ~25 % of a true FFD pack."""
        slots = aggregate_demand(trace, slot_s=HOUR)
        checked = 0
        for hour in (6, 12, 18):
            t = hour * HOUR
            active = tasks_active_at(trace, t)
            if len(active) < 20:
                continue
            real = pack_neat(active)
            estimate = plan_neat(slots[hour], 150).active
            assert real.hosts_used == pytest.approx(estimate, rel=0.25), (
                f"hour {hour}: FFD {real.hosts_used} vs "
                f"aggregate {estimate:.1f}"
            )
            checked += 1
        assert checked >= 2

    def test_zombiestack_packs_fewer_hosts_than_neat(self, trace):
        """The relaxed constraint is what shrinks the active set."""
        active = tasks_active_at(trace, 12 * HOUR)
        assert pack_zombiestack(active).hosts_used \
            < pack_neat(active).hosts_used

    def test_memory_pressure_hurts_neat_not_zombiestack(self, trace):
        from repro.traces.transform import double_memory_demand
        active = tasks_active_at(trace, 12 * HOUR)
        doubled = tasks_active_at(double_memory_demand(trace), 12 * HOUR)
        assert pack_neat(doubled).hosts_used > pack_neat(active).hosts_used
        zs_before = pack_zombiestack(active).hosts_used
        zs_after = pack_zombiestack(doubled).hosts_used
        assert zs_after <= zs_before * 1.3

    def test_everything_placeable(self, trace):
        active = tasks_active_at(trace, 12 * HOUR)
        assert pack_neat(active).unplaced == 0
        assert pack_zombiestack(active).unplaced == 0
