"""ZomNet end-to-end: the full protocol under an adversarial fabric.

The acceptance scenario drives all 15 protocol verbs plus one controller
failover, twice — once fault-free, once with reply loss and duplication
injected on every link from a fixed seed — and asserts the final rack
states are identical: no double-executed mutating verb, no lease leak,
no deadline-dead call executed server-side.  A per-verb property test
then does the same with a scripted fault aimed at each verb in turn.

Timing artifacts (retry backoff, probe misses, event timestamps) are
deliberately excluded from the state fingerprint; globally-counted ids
(buffer ids, rkeys) are excluded because the two racks share one
process-wide counter.
"""

import os

import pytest

from repro.check.model import RPC_ACTION_VERBS
from repro.core.protocol import Method

#: The single-rack scenario serves every intra-rack verb; the cross-rack
#: FED_borrow/FED_return pair needs a federation and gets the same
#: fault-equivalence treatment in tests/test_fed_chaos.py.
INTRA_RACK_VERBS = tuple(v for v in RPC_ACTION_VERBS
                         if not v.startswith("FED_"))
from repro.core.rack import Rack
from repro.hypervisor.vm import VmSpec
from repro.obs import Telemetry
from repro.rdma.fabric import DUPLICATE, REPLY_LOSS, LinkFaults
from repro.sanitize.pytest_plugin import get_session_sanitizer
from repro.units import MiB


def _chaos_seeds():
    """CI's chaos-matrix job sweeps seeds via ZOMNET_CHAOS_SEEDS."""
    raw = os.environ.get("ZOMNET_CHAOS_SEEDS", "7")
    return tuple(int(s) for s in raw.split(","))


def _pattern(ppn):
    return (b"zomnet-%06d-" % ppn) * 8


def _drive_full_protocol(rack):
    """All 15 verbs + one failover (mirrors the obs self-check golden run).

    Returns the VM that survives to the end (its pages are part of the
    state fingerprint).
    """
    hv = rack.server("user").hypervisor
    hv.content_mode = True
    rack.server("active").hypervisor.content_mode = True

    rack.make_zombie("spare")                      # GS_goto_zombie, mirror_op
    vm1 = rack.create_vm("user", VmSpec("vm1", 128 * MiB),
                         local_fraction=0.5)       # GS_alloc_ext
    manager = rack.server("user").manager
    manager.request_swap(32 * MiB)                 # GS_alloc_swap
    manager.controller.call(Method.GS_GET_LRU_ZOMBIE.value)
    rack.wake("spare", reclaim_bytes=512 * MiB)    # GS_wake, GS_reclaim,
    #                                              # US_reclaim, AS_get_free_mem
    vm2 = rack.create_vm("user", VmSpec("vm2", 64 * MiB), local_fraction=0.5)
    store2 = hv.store_for("vm2")
    store2.transfer_content = True
    for ppn in range(vm2.spec.total_pages):
        hv.write_page(vm2, ppn, _pattern(ppn))
    rack.migrate_vm("vm2", "user", "active")       # GS_transfer
    rack.destroy_vm("user", "vm1")                 # GS_release

    rack.crash_server("spare")
    rack.server("active").manager.report_host_failure("spare")
    #                                              # GS_report_failure,
    #                                              # US_invalidate
    rack.heal_server("spare")
    rack.start_host_monitoring(probe_period_s=0.5,
                               miss_threshold=6)   # heartbeat, AS_resync
    rack.engine.run(until=3.0)

    deposed = rack.controller
    rack.kill_controller()                         # the failover
    rack.engine.run(until=12.0)
    assert rack.controller is not deposed, "secondary did not promote"
    rack.make_zombie("spare")                      # one epoch-2 mutation
    rack.engine.run(until=15.0)
    return vm2


def _run_scenario(seed, install_faults=None, telemetry=False):
    tel = Telemetry(enabled=True) if telemetry else None
    rack = Rack(["user", "active", "spare"], memory_bytes=512 * MiB,
                buff_size=16 * MiB, rng_seed=seed, telemetry=tel)
    if install_faults is not None:
        install_faults(rack.fabric.message_faults)
    vm2 = _drive_full_protocol(rack)
    return rack, vm2


def _fingerprint(rack, vm2):
    """Canonical end state: ids from process-global counters excluded."""
    db = rack.controller.db
    buffers = tuple(sorted(
        (b.host, b.kind.value, b.user or "", b.size_bytes, b.offset)
        for b in db.all_buffers()))
    power = tuple((name, rack.server(name).is_zombie)
                  for name in sorted(rack.servers))
    hv = rack.server("active").hypervisor
    pages = tuple(hv.read_page(vm2, ppn)[:14]
                  for ppn in range(vm2.spec.total_pages))
    store = hv.store_for(vm2.spec.name)
    leases = tuple(sorted(
        (ls.lease.host, ls.lease.size_bytes, ls.lease.zombie)
        for ls in store._leases.values())) if store is not None else ()
    return {
        "epoch": rack.controller.epoch,
        "buffers": buffers,
        "power": power,
        "pool": tuple(sorted(rack.pool_summary().items())),
        "pages": pages,
        "leases": leases,
    }


def _shadow_delta(san, before):
    """MemSan shadow entries this run created, rkey-canonicalized."""
    return sorted((s.host, str(s.state), s.owner or "")
                  for key, s in san._buffers.items() if key not in before)


def _dedup_replays(rack):
    servers = [rack.controller.rpc, rack.secondary.rpc]
    servers += [s.manager.rpc for s in rack.servers.values()]
    return sum(server.dedup_replays for server in servers)


@pytest.fixture(scope="module")
def baseline(request):
    """The fault-free reference run (fixed seed 7), computed once."""
    san = get_session_sanitizer(request.config)
    before = set(san._buffers) if san is not None else set()
    rack, vm2 = _run_scenario(seed=7)
    shadow = _shadow_delta(san, before) if san is not None else None
    return _fingerprint(rack, vm2), shadow


class TestChaosMatrix:
    @pytest.mark.parametrize("seed", _chaos_seeds())
    def test_full_protocol_under_reply_loss_and_duplication(self, seed,
                                                            request):
        san = get_session_sanitizer(request.config)

        before = set(san._buffers) if san is not None else set()
        clean_rack, clean_vm = _run_scenario(seed=seed)
        clean_fp = _fingerprint(clean_rack, clean_vm)
        clean_shadow = (_shadow_delta(san, before)
                        if san is not None else None)

        before = set(san._buffers) if san is not None else set()
        faulty_rack, faulty_vm = _run_scenario(
            seed=seed, telemetry=True,
            install_faults=lambda inj: inj.set_link(
                "*", "*", LinkFaults(reply_loss=0.08, duplicate=0.12)))
        assert _fingerprint(faulty_rack, faulty_vm) == clean_fp

        # The adversary actually fired, and dedup actually absorbed
        # re-deliveries — the equivalence above is not vacuous.
        injected = faulty_rack.fabric.message_faults.injected
        assert injected[REPLY_LOSS] > 0 and injected[DUPLICATE] > 0
        assert _dedup_replays(faulty_rack) > 0

        # Every intra-rack verb crossed the adversarial fabric.
        tel = faulty_rack.telemetry
        seen = {labels.get("verb")
                for labels in tel.registry.labels_for("rpc_served_total")}
        missing = set(INTRA_RACK_VERBS) - seen
        assert not missing, f"verbs never served under chaos: {missing}"

        # No deadline-dead call executed server-side (the scenario
        # injects no latency, so no budget may ever expire).
        rejections = sum(
            tel.registry.value("rpc_deadline_rejections_total", **labels)
            for labels in
            tel.registry.labels_for("rpc_deadline_rejections_total"))
        assert rejections == 0

        if san is not None:
            assert _shadow_delta(san, before) == clean_shadow


class TestPerVerbEquivalence:
    """Each verb, individually, under a scripted fault on its first send."""

    @pytest.mark.parametrize("kind", (REPLY_LOSS, DUPLICATE))
    @pytest.mark.parametrize("verb", INTRA_RACK_VERBS)
    def test_faulted_run_matches_single_delivery(self, verb, kind,
                                                 baseline, request):
        base_fp, base_shadow = baseline
        san = get_session_sanitizer(request.config)
        before = set(san._buffers) if san is not None else set()
        rack, vm2 = _run_scenario(
            seed=7,
            install_faults=lambda inj: inj.script("*", "*", kind,
                                                  method=verb))
        assert _fingerprint(rack, vm2) == base_fp
        fired = sum(rack.fabric.message_faults.injected.values())
        assert fired >= 1, f"scripted {kind} on {verb!r} never fired"
        if san is not None:
            assert _shadow_delta(san, before) == base_shadow
