"""Smoke tests: every example script runs green.

Run as subprocesses so import-time and ``__main__`` behaviour are covered
exactly as a user would hit them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    if script.name == "datacenter_energy.py":
        argv = [sys.executable, str(script), "100", "1"]  # small + fast
    else:
        argv = [sys.executable, str(script)]
    result = subprocess.run(argv, capture_output=True, text=True,
                            timeout=240)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
