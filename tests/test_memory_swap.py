"""Swap devices: latency ordering, async write-behind, backlog queueing."""

import pytest

from repro.errors import ConfigurationError, SwapError
from repro.memory.buffers import BufferLease, RemotePageStore
from repro.memory.swap import (ASYNC_SUBMIT_S, HddSwap, RemoteRamSwap,
                               SsdSwap, SWAP_DEVICE_FACTORIES)
from repro.rdma.fabric import Fabric
from repro.units import PAGE_SIZE


class TestLatencyOrdering:
    def test_ssd_faster_than_hdd(self):
        assert SsdSwap.read_latency_s < HddSwap.read_latency_s

    def test_remote_ram_faster_than_ssd(self):
        fabric = Fabric()
        user = fabric.add_node("u")
        server = fabric.add_node("s")
        mr = server.register_mr(4 * PAGE_SIZE)
        store = RemotePageStore(user)
        store.add_lease(BufferLease(1, "s", mr.rkey, 4 * PAGE_SIZE, True))
        ram = RemoteRamSwap(store)
        ram.swap_out("k")
        _, ram_in = ram.swap_in("k")
        assert ram_in < SsdSwap.read_latency_s


class TestSwapProtocol:
    def test_out_in_round_trip(self):
        dev = SsdSwap(capacity_pages=4)
        dev.swap_out("a", b"payload")
        data, _ = dev.swap_in("a")
        assert data == b"payload"
        assert not dev.contains("a")

    def test_double_out_rejected(self):
        dev = SsdSwap(4)
        dev.swap_out("a")
        with pytest.raises(SwapError):
            dev.swap_out("a")

    def test_in_of_absent_key_rejected(self):
        with pytest.raises(SwapError):
            SsdSwap(4).swap_in("missing")

    def test_capacity_enforced(self):
        dev = SsdSwap(1)
        dev.swap_out("a")
        with pytest.raises(SwapError):
            dev.swap_out("b")

    def test_discard(self):
        dev = SsdSwap(2)
        dev.swap_out("a")
        dev.discard("a")
        assert not dev.contains("a")
        with pytest.raises(SwapError):
            dev.discard("a")

    def test_counters(self):
        dev = SsdSwap(4)
        dev.swap_out("a")
        dev.swap_in("a")
        assert dev.swap_outs == 1
        assert dev.swap_ins == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SsdSwap(0)


class TestAsyncWriteBehind:
    def test_swap_out_returns_submit_cost_only(self):
        dev = HddSwap(8)
        assert dev.swap_out("a") == ASYNC_SUBMIT_S

    def test_backlog_accumulates(self):
        dev = HddSwap(8)
        dev.swap_out("a")
        dev.swap_out("b")
        assert dev.backlog_s == pytest.approx(2 * HddSwap.write_latency_s)

    def test_tick_drains_backlog(self):
        dev = HddSwap(8)
        dev.swap_out("a")
        dev.tick(HddSwap.write_latency_s / 2)
        assert dev.backlog_s == pytest.approx(HddSwap.write_latency_s / 2)
        dev.tick(100.0)
        assert dev.backlog_s == 0.0

    def test_swap_in_stalls_behind_backlog(self):
        dev = HddSwap(8)
        dev.swap_out("a")
        dev.swap_out("b")
        _, elapsed = dev.swap_in("a")
        assert elapsed == pytest.approx(2 * HddSwap.write_latency_s
                                        + HddSwap.read_latency_s)
        assert dev.backlog_s == 0.0  # the read forced a drain

    def test_drained_device_serves_at_base_latency(self):
        dev = SsdSwap(8)
        dev.swap_out("a")
        dev.tick(1.0)
        _, elapsed = dev.swap_in("a")
        assert elapsed == pytest.approx(SsdSwap.read_latency_s)


class TestFactories:
    def test_factory_table(self):
        assert SWAP_DEVICE_FACTORIES["local-ssd"] is SsdSwap
        assert SWAP_DEVICE_FACTORIES["local-hdd"] is HddSwap
        dev = SWAP_DEVICE_FACTORIES["local-ssd"](16)
        assert dev.capacity_pages == 16
