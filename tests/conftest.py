"""Shared fixtures: small, fast environments for the whole suite."""

import pytest

from repro.acpi.platform import build_platform
from repro.core.rack import Rack
from repro.rdma.fabric import Fabric
from repro.units import GiB, MiB


@pytest.fixture
def platform():
    """A 1 GiB Sz-capable server platform."""
    return build_platform("test-server", memory_bytes=1 * GiB)


@pytest.fixture
def fabric():
    return Fabric()


@pytest.fixture
def small_rack():
    """Three 512 MiB servers with 16 MiB buffers — fast to build."""
    return Rack(["s1", "s2", "s3"], memory_bytes=512 * MiB,
                buff_size=16 * MiB)


@pytest.fixture
def rack_with_zombie(small_rack):
    """The small rack with s3 already pushed to Sz."""
    small_rack.make_zombie("s3")
    return small_rack
