"""Migration protocols: native pre-copy vs. ZombieStack."""

import pytest

from repro.errors import ConfigurationError, MigrationError
from repro.hypervisor.migration import (migrate_native, migrate_zombiestack,
                                        migrate_vm_zombiestack)
from repro.hypervisor.vm import Vm, VmSpec, VmState
from repro.memory.frames import Frame
from repro.memory.replacement import FifoPolicy
from repro.units import PAGE_SIZE


class TestNativeMigration:
    def test_transfers_whole_vm_plus_dirty_rounds(self):
        result = migrate_native(total_pages=1000, wss_pages=200)
        assert result.pages_transferred > 1000
        assert result.protocol == "native"

    def test_time_mostly_flat_in_wss(self):
        small = migrate_native(100_000, 20_000)
        large = migrate_native(100_000, 80_000)
        assert large.total_time_s < small.total_time_s * 1.5

    def test_downtime_smaller_than_total(self):
        result = migrate_native(10_000, 5_000)
        assert 0 < result.downtime_s < result.total_time_s

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            migrate_native(0, 0)
        with pytest.raises(ConfigurationError):
            migrate_native(100, 200)
        with pytest.raises(ConfigurationError):
            migrate_native(100, 50, bandwidth=0)


class TestZombieStackMigration:
    def test_transfers_only_local_pages(self):
        result = migrate_zombiestack(local_resident_pages=500,
                                     remote_pages=1500)
        assert result.pages_transferred == 500
        assert result.remote_pages_kept == 1500

    def test_grows_with_local_part(self):
        small = migrate_zombiestack(1000, 0)
        large = migrate_zombiestack(50_000, 0)
        assert large.total_time_s > small.total_time_s

    def test_beats_native_for_same_vm(self):
        total, wss = 2_000_000, 800_000
        native = migrate_native(total, wss)
        zombie = migrate_zombiestack(wss // 2, wss - wss // 2)
        assert zombie.total_time_s < native.total_time_s

    def test_bytes_transferred(self):
        result = migrate_zombiestack(10, 0)
        assert result.bytes_transferred == 10 * PAGE_SIZE

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            migrate_zombiestack(-1, 0)


class TestVmLevelWrapper:
    def _vm(self):
        vm = Vm(VmSpec("v", 16 * PAGE_SIZE), 16 * PAGE_SIZE, FifoPolicy())
        vm.transition(VmState.RUNNING)
        for ppn in range(4):
            vm.table.map_local(ppn, Frame(ppn))
        vm.table.demote(0, remote_slot=1)
        return vm

    def test_uses_real_paging_state(self):
        vm = self._vm()
        result = migrate_vm_zombiestack(vm)
        assert result.pages_transferred == 3
        assert result.remote_pages_kept == 1
        assert vm.state is VmState.RUNNING  # resumed after migration

    def test_stopped_vm_rejected(self):
        vm = self._vm()
        vm.transition(VmState.STOPPED)
        with pytest.raises(MigrationError):
            migrate_vm_zombiestack(vm)
