"""The generated experiment report."""

import pytest

from repro.analysis.report import generate_report, write_report


@pytest.fixture(scope="module")
def report_text():
    # quick mode, shrunk further for the test run
    return generate_report(quick=True, scale_pages=192)


class TestReport:
    def test_contains_every_experiment(self, report_text):
        for heading in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4", "Fig. 8",
                        "Fig. 9", "Fig. 10", "Table 1", "Table 2",
                        "Table 3"):
            assert heading in report_text, heading

    def test_table3_values_embedded(self, report_text):
        assert "12.67" in report_text
        assert "11.15" in report_text

    def test_infinite_cells_rendered(self, report_text):
        assert "∞" in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("|") and set(line) <= {"|", "-", " "}:
                header = lines[i - 1]
                assert header.startswith("|")
                assert header.count("|") == line.count("|")

    def test_write_report(self, tmp_path, report_text, monkeypatch):
        import repro.analysis.report as report_module
        monkeypatch.setattr(report_module, "generate_report",
                            lambda quick, seed: report_text)
        path = str(tmp_path / "report.md")
        assert write_report(path) == path
        with open(path) as handle:
            assert handle.read() == report_text
