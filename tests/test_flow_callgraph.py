"""Unit tests for the ZomFlow call-graph substrate.

The interesting property is *resolution*: handler bindings through
wrapper calls, methods through ``__init__``-assigned instance types,
import aliases, and scheduled callbacks.  The real-tree tests pin the
resolutions the passes depend on, so a refactor of ``_register_handlers``
that silently breaks binding discovery fails here, not as a quietly
empty analysis.
"""

from pathlib import Path

import pytest

from repro.flow import build_graph, load_sources
from repro.flow.callgraph import module_name_for, verb_of_member


@pytest.fixture(scope="module")
def real_graph():
    return build_graph(load_sources(["src"]))


class TestRealTreeResolution:
    def test_register_binding_resolves_through_guard_wrapper(self,
                                                             real_graph):
        # register(Method.GS_GOTO_ZOMBIE.value,
        #          traced(..., self._guard(self.gs_goto_zombie), ...))
        bindings = [b for b in real_graph.handler_bindings
                    if b.member == "GS_GOTO_ZOMBIE"]
        assert bindings, "GS_GOTO_ZOMBIE register site not found"
        handlers = {h for b in bindings for h in b.handlers}
        assert ("repro.core.controller.GlobalMemoryController"
                ".gs_goto_zombie") in handlers

    def test_every_controller_verb_binds_its_handler(self, real_graph):
        by_member = {}
        for b in real_graph.handler_bindings:
            if b.member:
                by_member.setdefault(b.member, set()).update(b.handlers)
        for member, method in [
            ("GS_RECLAIM", "gs_reclaim"),
            ("US_RECLAIM", "us_reclaim"),
            ("MIRROR_OP", "apply_mirror"),
        ]:
            assert any(h.endswith("." + method) for h in by_member[member])

    def test_scheduled_callbacks_include_periodic_closures(self, real_graph):
        cbs = real_graph.scheduled_callbacks
        assert ("repro.core.recovery.RecoveryCoordinator.probe_tick"
                in cbs)
        # A callback defined as a closure inside a method still resolves.
        assert any(q.endswith("schedule_swap_topup.top_up") for q in cbs)

    def test_sim_context_reaches_database_through_handlers(self, real_graph):
        sim = real_graph.reachable_from(sorted(real_graph.sim_roots()))
        assert "repro.core.database.BufferDatabase.remove" in sim

    def test_verb_of_member_maps_the_protocol_enum(self):
        sources = load_sources(["src"])
        mapping = verb_of_member(sources)
        assert mapping["GS_GOTO_ZOMBIE"] == "GS_goto_zombie"
        assert mapping["MIRROR_OP"] == "mirror_op"


class TestFixtureResolution:
    def test_alias_expansion_on_external_calls(self):
        src = {Path("fx/mod.py"): (
            "from time import monotonic as _mono\n"
            "def f():\n"
            "    return _mono()\n"
        )}
        graph = build_graph(src)
        assert any(c.dotted == "time.monotonic"
                   for c in graph.external_calls)

    def test_attr_typed_method_call_resolves(self):
        src = {Path("fx/mod.py"): (
            "class Store:\n"
            "    def save(self):\n"
            "        return 1\n"
            "class App:\n"
            "    def __init__(self):\n"
            "        self.store = Store()\n"
            "    def run(self):\n"
            "        return self.store.save()\n"
        )}
        graph = build_graph(src)
        edges = {(e.caller, e.callee) for e in graph.edges}
        assert ("fx.mod.App.run", "fx.mod.Store.save") in edges

    def test_shortest_chain_and_render(self):
        src = {Path("fx/mod.py"): (
            "def a():\n"
            "    return b()\n"
            "def b():\n"
            "    return c()\n"
            "def c():\n"
            "    return 1\n"
        )}
        graph = build_graph(src)
        chain = graph.shortest_chain({"fx.mod.a"}, "fx.mod.c")
        assert chain == ["fx.mod.a", "fx.mod.b", "fx.mod.c"]
        assert graph.render(chain) == "a -> b -> c"

    def test_module_name_anchors_at_repro(self):
        assert module_name_for(
            Path("src/repro/core/controller.py")) == "repro.core.controller"
        assert module_name_for(Path("fx/pkg/__init__.py")) == "fx.pkg"
