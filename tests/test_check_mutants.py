"""End-to-end: model counterexamples replay against the real rack.

The tentpole guarantee — every ZomCheck violation is not a model
artifact but a real behavior — is enforced here: for each seeded mutant
the explorer's minimized trace is replayed through a concrete
:class:`~repro.core.rack.Rack` (on ``sim.engine``) with the matching
concrete bug patched in and MemSan watching, and the very same finding
kind must fire.  The same trace on the clean tree must stay silent.
"""

import pytest

from repro.check import Explorer, ProtocolModel
from repro.check.model import BOUNDS, MUTANTS
from repro.check.mutants import mutant as make_mutant
from repro.check.replay import replay_trace
from repro.sanitize.pytest_plugin import get_session_sanitizer


@pytest.fixture(autouse=True)
def _drain_session_sanitizer(request):
    """Under ``--memsan`` the session sanitizer also observes the replays'
    *intentional* violations; drain them so its per-test check stays about
    accidental ones (same idiom as tests/test_memsan.py)."""
    yield
    session = get_session_sanitizer(request.config)
    if session is not None:
        session.drain_findings()

EXPECTED_KIND = {
    "skip-epoch-bump": "fenced-write",
    "dispatch-in-sz": "cpu-dead-dispatch",
    "double-lend": "double-lend",
    "no-dedup": "duplicate-execution",
}


def _counterexample(mutant_name):
    model = ProtocolModel(BOUNDS["tiny"], mutant=mutant_name)
    result = Explorer(model).run()
    assert not result.ok
    return result


class TestCounterexampleReplay:
    @pytest.mark.parametrize("mutant_name", MUTANTS)
    def test_model_violation_reproduces_concretely(self, mutant_name):
        result = _counterexample(mutant_name)
        replay = replay_trace(BOUNDS["tiny"], result.trace.names,
                              mutant=mutant_name)
        assert replay.reproduces(result.violation.kind), (
            f"{mutant_name}: model found {result.violation.kind!r} but the "
            f"concrete replay only observed {replay.kinds!r}")

    @pytest.mark.parametrize("mutant_name", MUTANTS)
    def test_clean_tree_stays_silent_on_the_same_trace(self, mutant_name):
        result = _counterexample(mutant_name)
        replay = replay_trace(BOUNDS["tiny"], result.trace.names)
        assert replay.kinds == (), (
            f"the unmutated tree reproduced {replay.kinds!r} — either the "
            f"bug is real (fix it!) or the replay mapping is wrong")

    def test_benign_trace_replays_without_findings(self):
        replay = replay_trace(
            BOUNDS["small"],
            ["GS_alloc_ext(h1)", "GS_goto_zombie(h3)", "GS_release(h1)",
             "GS_wake(h3)"])
        assert replay.kinds == ()
        assert all(step.ok for step in replay.steps)


class TestMutantPatching:
    def test_install_uninstall_restores_originals(self):
        from repro.core.database import BufferDatabase
        original = BufferDatabase.free_buffers
        bug = make_mutant("double-lend")
        with bug:
            assert BufferDatabase.free_buffers is not original
        assert BufferDatabase.free_buffers is original

    def test_double_install_raises(self):
        bug = make_mutant("dispatch-in-sz")
        with bug:
            with pytest.raises(RuntimeError):
                bug.install()
