"""The ZomTrace metrics registry: instruments, labels, snapshot/delta."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM)


class TestInstruments:
    def test_counter_is_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0

    def test_histogram_aggregates(self):
        hist = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        assert hist.mean == pytest.approx(55.55 / 4)
        assert hist.min == 0.05
        assert hist.max == 50.0
        assert hist.cumulative_buckets() == [
            (0.1, 1), (1.0, 2), (10.0, 3), (float("inf"), 4),
        ]

    def test_histogram_quantiles_interpolate(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)
        # All mass sits in the (1, 2] bucket: every quantile lands there.
        assert 1.0 < hist.quantile(0.5) <= 2.0
        assert 1.0 < hist.quantile(0.99) <= 2.0
        assert hist.quantile(0.99) > hist.quantile(0.5)

    def test_histogram_overflow_quantile_is_observed_max(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(7.0)
        assert hist.quantile(0.99) == 7.0

    def test_histogram_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            Histogram(buckets=())
        with pytest.raises(ConfigurationError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram().quantile(0.0)
        assert Histogram().quantile(0.5) == 0.0  # empty histogram


class TestRegistry:
    def test_same_name_and_labels_share_one_child(self):
        registry = MetricsRegistry()
        a = registry.counter("rpc_calls_total", verb="GS_wake")
        b = registry.counter("rpc_calls_total", verb="GS_wake")
        other = registry.counter("rpc_calls_total", verb="GS_reclaim")
        a.inc()
        b.inc()
        assert a is b
        assert a is not other
        assert registry.value("rpc_calls_total", verb="GS_wake") == 2

    def test_kind_conflict_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_invalid_names_are_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("bad name")
        with pytest.raises(ConfigurationError):
            registry.counter("fine_name", **{"bad-label": "x"})

    def test_get_and_value_never_create(self):
        registry = MetricsRegistry()
        assert registry.get("absent") is None
        assert registry.value("absent") == 0.0
        assert registry.labels_for("absent") == []
        assert registry.families() == []

    def test_value_of_histogram_is_its_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", verb="GS_wake")
        hist.observe(0.1)
        hist.observe(0.2)
        assert registry.value("lat_seconds", verb="GS_wake") == 2

    def test_labels_for_lists_every_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total", verb="a")
        registry.counter("c_total", verb="b", node="h1")
        assert registry.labels_for("c_total") == [
            {"node": "h1", "verb": "b"}, {"verb": "a"},
        ]

    def test_disabled_registry_hands_out_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("c_total") is NULL_COUNTER
        assert registry.gauge("g") is NULL_GAUGE
        assert registry.histogram("h_seconds") is NULL_HISTOGRAM
        registry.counter("c_total").inc()
        registry.gauge("g").set(5.0)
        registry.histogram("h_seconds").observe(1.0)
        assert registry.families() == []
        assert NULL_COUNTER.value == 0.0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0


class TestSnapshotDelta:
    def test_snapshot_flattens_series(self):
        registry = MetricsRegistry()
        registry.counter("c_total", verb="x").inc(3)
        registry.gauge("g").set(1.5)
        hist = registry.histogram("h_seconds")
        hist.observe(0.25)
        snap = registry.snapshot()
        assert snap['c_total{verb="x"}'] == 3.0
        assert snap["g"] == 1.5
        assert snap["h_seconds_count"] == 1.0
        assert snap["h_seconds_sum"] == 0.25

    def test_delta_reports_only_what_changed(self):
        registry = MetricsRegistry()
        registry.counter("c_total", verb="x").inc()
        registry.counter("steady_total").inc()
        before = registry.snapshot()
        registry.counter("c_total", verb="x").inc(2)
        registry.counter("c_total", verb="new").inc()  # absent before
        change = MetricsRegistry.delta(before, registry.snapshot())
        assert change == {'c_total{verb="x"}': 2.0, 'c_total{verb="new"}': 1.0}
