"""Neat and Oasis consolidation cycles, and admission control."""

import pytest

from repro.cloud.admission import AdmissionController
from repro.cloud.model import ClusterModel, HostPowerState, VmInstance
from repro.cloud.neat import NeatConsolidator
from repro.cloud.oasis import OasisConsolidator
from repro.errors import AdmissionError, ConfigurationError
from repro.units import GiB


def _vm(name, cpu=0.2, mem=0.2, cpu_usage=None, mem_usage=None):
    return VmInstance(name, cpu_request=cpu, mem_request=mem,
                      cpu_usage=cpu if cpu_usage is None else cpu_usage,
                      mem_usage=mem if mem_usage is None else mem_usage)


def _cluster_with_underload():
    """h1 busy, h2 underloaded with one small VM, h3 empty."""
    cluster = ClusterModel(["h1", "h2", "h3"])
    cluster.host("h1").add_vm(_vm("busy", cpu=0.5, mem=0.3, cpu_usage=0.5))
    cluster.host("h2").add_vm(_vm("small", cpu=0.1, mem=0.1, cpu_usage=0.05))
    return cluster


class TestNeatDetection:
    def test_underload_detection(self):
        cluster = _cluster_with_underload()
        neat = NeatConsolidator(cluster)
        assert [h.name for h in neat.underloaded_hosts()] == ["h2"]

    def test_empty_hosts_not_underloaded(self):
        cluster = _cluster_with_underload()
        neat = NeatConsolidator(cluster)
        assert "h3" not in [h.name for h in neat.underloaded_hosts()]

    def test_overload_detection(self):
        cluster = ClusterModel(["h1"])
        cluster.host("h1").add_vm(_vm("hog", cpu=0.9, mem=0.2, cpu_usage=0.9))
        neat = NeatConsolidator(cluster)
        assert [h.name for h in neat.overloaded_hosts()] == ["h1"]

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            NeatConsolidator(ClusterModel(["h"]), underload_threshold=0.9,
                             overload_threshold=0.5)


class TestNeatCycle:
    def test_underloaded_host_evacuated_and_suspended(self):
        cluster = _cluster_with_underload()
        neat = NeatConsolidator(cluster, zombie_aware=False)
        report = neat.run_cycle()
        assert report.migrations == 1
        assert "h2" in report.suspended_hosts
        assert cluster.host("h2").state is HostPowerState.SUSPENDED
        assert "small" in cluster.host("h1").vms

    def test_zombie_aware_suspends_to_sz(self):
        cluster = _cluster_with_underload()
        neat = NeatConsolidator(cluster, zombie_aware=True)
        neat.run_cycle()
        assert cluster.host("h2").state is HostPowerState.ZOMBIE
        assert cluster.remote_pool_free > 0

    def test_vanilla_blocked_by_memory(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.host("h1").add_vm(_vm("big", cpu=0.3, mem=0.8, cpu_usage=0.3))
        cluster.host("h2").add_vm(_vm("small", cpu=0.1, mem=0.5,
                                      cpu_usage=0.05))
        neat = NeatConsolidator(cluster, zombie_aware=False)
        report = neat.run_cycle()
        # small's 0.5 booking does not fit next to big's 0.8
        assert report.failed_migrations >= 1
        assert cluster.host("h2").state is HostPowerState.ON

    def test_zombie_aware_places_with_30pct_wss(self):
        cluster = ClusterModel(["h1", "h2", "h3"])
        cluster.host("h1").add_vm(_vm("big", cpu=0.3, mem=0.8, cpu_usage=0.3))
        cluster.host("h2").add_vm(_vm("small", cpu=0.1, mem=0.5,
                                      cpu_usage=0.05, mem_usage=0.4))
        cluster.suspend("h3", zombie=True)  # provides the remote pool
        neat = NeatConsolidator(cluster, zombie_aware=True)
        report = neat.run_cycle()
        assert report.migrations == 1
        assert cluster.host("h2").state is HostPowerState.ZOMBIE
        moved = cluster.host("h1").vms["small"]
        assert moved.local_mem_fraction < 1.0

    def test_overload_offloads_smallest_vms(self):
        cluster = ClusterModel(["h1", "h2"])
        host = cluster.host("h1")
        host.add_vm(_vm("big", cpu=0.6, mem=0.2, cpu_usage=0.6))
        host.add_vm(_vm("small", cpu=0.3, mem=0.1, cpu_usage=0.3))
        neat = NeatConsolidator(cluster, zombie_aware=False)
        report = neat.run_cycle()
        assert "small" in cluster.host("h2").vms
        assert cluster.host("h1").cpu_utilization <= 0.8

    def test_wakes_zombie_when_no_room(self):
        cluster = ClusterModel(["h1", "h2", "h3"])
        cluster.host("h1").add_vm(_vm("hog1", cpu=0.7, mem=0.2,
                                      cpu_usage=0.85))
        cluster.host("h1").add_vm(_vm("hog2", cpu=0.25, mem=0.2,
                                      cpu_usage=0.1))
        cluster.host("h2").add_vm(_vm("full", cpu=0.9, mem=0.2,
                                      cpu_usage=0.7))
        cluster.suspend("h3", zombie=True)
        neat = NeatConsolidator(cluster, zombie_aware=True)
        report = neat.run_cycle()
        assert "h3" in report.woken_hosts
        assert cluster.host("h3").state is HostPowerState.ON


class TestOasis:
    def test_partial_migration_of_idle_vms(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.host("h1").add_vm(_vm("busy", cpu=0.5, mem=0.3,
                                      cpu_usage=0.5))
        cluster.host("h2").add_vm(_vm("sleeper", cpu=0.3, mem=0.6,
                                      cpu_usage=0.005, mem_usage=0.5))
        oasis = OasisConsolidator(cluster)
        report = oasis.run_cycle()
        assert report.partial_migrations == 1
        assert report.memory_relocated > 0
        assert cluster.host("h2").state is HostPowerState.SUSPENDED
        moved = cluster.host("h1").vms["sleeper"]
        assert moved.mem_request < 0.6  # only the working set moved

    def test_non_idle_vms_not_partially_migrated(self):
        cluster = ClusterModel(["h1", "h2"])
        cluster.host("h1").add_vm(_vm("busy", cpu=0.5, mem=0.3,
                                      cpu_usage=0.5))
        cluster.host("h2").add_vm(_vm("active", cpu=0.3, mem=0.9,
                                      cpu_usage=0.15))
        oasis = OasisConsolidator(cluster)
        report = oasis.run_cycle()
        assert report.partial_migrations == 0

    def test_memory_servers_sized_from_relocated_memory(self):
        from repro.cloud.oasis import OasisReport
        report = OasisReport()
        report.memory_relocated = 1.5
        assert report.memory_servers_needed == 2
        report.memory_relocated = 0.0
        assert report.memory_servers_needed == 0


class TestAdmission:
    def test_admit_within_capacity(self):
        ctrl = AdmissionController(10 * GiB, safety_fraction=0.9)
        ctrl.admit("vm1", 4 * GiB)
        ctrl.admit("vm2", 4 * GiB)
        assert ctrl.available_bytes == 1 * GiB

    def test_overcommit_refused(self):
        ctrl = AdmissionController(10 * GiB, safety_fraction=0.9)
        ctrl.admit("vm1", 8 * GiB)
        with pytest.raises(AdmissionError):
            ctrl.admit("vm2", 2 * GiB)

    def test_double_admit_refused(self):
        ctrl = AdmissionController(10 * GiB)
        ctrl.admit("vm1", GiB)
        with pytest.raises(AdmissionError):
            ctrl.admit("vm1", GiB)

    def test_release_frees_capacity(self):
        ctrl = AdmissionController(10 * GiB)
        ctrl.admit("vm1", 8 * GiB)
        assert ctrl.release("vm1") == 8 * GiB
        ctrl.admit("vm2", 8 * GiB)

    def test_release_unknown_refused(self):
        with pytest.raises(AdmissionError):
            AdmissionController(GiB).release("ghost")

    def test_shrink_below_reservations_refused(self):
        ctrl = AdmissionController(10 * GiB)
        ctrl.admit("vm1", 8 * GiB)
        with pytest.raises(AdmissionError):
            ctrl.resize_rack(5 * GiB)

    def test_grow_rack(self):
        ctrl = AdmissionController(10 * GiB)
        ctrl.resize_rack(20 * GiB)
        ctrl.admit("vm1", 15 * GiB)
