"""Explorer tests: exhaustiveness, POR soundness, counterexample quality."""

import pytest

from repro.check import Explorer, ProtocolModel
from repro.check.model import BOUNDS, Bounds, MUTANTS
from repro.check.trace import minimize_trace, run_trace


@pytest.fixture(scope="module")
def tiny_result():
    return Explorer(ProtocolModel(BOUNDS["tiny"])).run()


class TestExhaustiveExploration:
    def test_tiny_bound_is_clean_and_complete(self, tiny_result):
        assert tiny_result.ok
        assert tiny_result.complete
        assert tiny_result.violation is None
        assert tiny_result.trace is None

    def test_tiny_bound_is_nontrivial(self, tiny_result):
        # The configuration must actually interleave: thousands of
        # distinct states, well past any single test's reach.
        assert tiny_result.states > 1_000
        assert tiny_result.transitions > tiny_result.states
        assert tiny_result.max_depth >= 10

    def test_state_cap_reports_incomplete(self):
        result = Explorer(ProtocolModel(BOUNDS["tiny"]),
                          max_states=100).run()
        assert not result.complete
        assert result.states >= 100
        assert result.ok  # truncated, but nothing bad in what was seen


class TestPartialOrderReduction:
    def test_por_preserves_the_reachable_state_space(self, tiny_result):
        # Sleep sets prune redundant *orderings*, never states: the
        # reduced and the full exploration must agree exactly.
        full = Explorer(ProtocolModel(BOUNDS["tiny"]), por=False).run()
        assert full.complete
        assert full.states == tiny_result.states
        assert full.ok

    def test_por_actually_skips_commuting_expansions(self, tiny_result):
        assert tiny_result.sleep_skips > 0

    def test_por_is_sound_under_state_dependent_footprints(self):
        # Regression: footprints were once cached globally by action name,
        # so GS_reclaim(h1)'s footprint from a state where its candidate
        # buffer was free (no ("h", user) entry) could be reused in a
        # state where the buffer was allocated, misclassifying a dependent
        # pair as independent and pruning a real interleaving.  A bound
        # with two leases per user makes reclaim/report_failure footprints
        # vary widely across states; reduced and full must still agree.
        bound = Bounds("varfp", hosts=2, buffers_per_host=1, max_faults=1,
                       max_leases_per_user=2, max_states=500_000)
        reduced = Explorer(ProtocolModel(bound)).run()
        full = Explorer(ProtocolModel(bound), por=False).run()
        assert reduced.complete and full.complete
        assert reduced.sleep_skips > 0
        assert reduced.states == full.states
        assert reduced.ok and full.ok


class TestSeededMutants:
    """Each seeded bug must yield a minimal, replayable counterexample."""

    EXPECTED_KIND = {
        "skip-epoch-bump": "fenced-write",
        "dispatch-in-sz": "cpu-dead-dispatch",
        "double-lend": "double-lend",
        "no-dedup": "duplicate-execution",
    }

    @pytest.mark.parametrize("mutant", MUTANTS)
    def test_mutant_is_caught_with_a_minimal_trace(self, mutant):
        model = ProtocolModel(BOUNDS["tiny"], mutant=mutant)
        result = Explorer(model).run()
        assert not result.ok
        assert result.violation.kind == self.EXPECTED_KIND[mutant]
        names = list(result.trace.names)
        assert 0 < len(names) <= len(result.raw_trace)

        # The minimized trace still reproduces the violation in the model.
        run = run_trace(model, names)
        assert run.valid
        assert run.violates(result.violation.kind)

        # 1-minimality: dropping any single step kills the counterexample.
        for index in range(len(names)):
            candidate = names[:index] + names[index + 1:]
            shrunk = run_trace(model, candidate)
            assert not (shrunk.valid
                        and shrunk.violates(result.violation.kind))

    def test_expected_kinds_cover_all_mutants(self):
        assert set(self.EXPECTED_KIND) == set(MUTANTS)


class TestTraceTools:
    def test_run_trace_rejects_disabled_steps(self):
        model = ProtocolModel(BOUNDS["tiny"])
        run = run_trace(model, ["GS_wake(h1)"])  # h1 is not a zombie
        assert not run.valid

    def test_minimize_requires_a_violating_trace(self):
        model = ProtocolModel(BOUNDS["tiny"])
        with pytest.raises(ValueError):
            minimize_trace(model, ["GS_goto_zombie(h1)"])

    def test_minimize_strips_commuting_noise(self):
        model = ProtocolModel(BOUNDS["tiny"], mutant="skip-epoch-bump")
        padded = ["GS_goto_zombie(h1)", "kill_controller", "promote",
                  "stale_mirror_op"]
        minimal = minimize_trace(model, padded)
        assert minimal == ["kill_controller", "promote", "stale_mirror_op"]
