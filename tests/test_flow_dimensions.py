"""Fixture tests for ZomDim (ZL012/ZL013/ZL014).

Each rule gets clean and violating in-memory fixture trees, exercising
the inference paths the single-file lint rules cannot see: name-rule
seeds, interprocedural return summaries, conversion-constant division,
time-domain separation and metric unit contracts — plus the suppression
and baseline-ratchet plumbing shared with the other ZomFlow passes.
"""

from pathlib import Path

from repro.flow import (analyze_sources, build_graph, check_dimensions,
                        diff_against_baseline, load_baseline,
                        write_baseline)
from repro.flow.dimensions import (compatible, load_unit_tables, meet,
                                   name_dim)


def _sources(sources):
    return {Path(p): s for p, s in sources.items()}


def _findings(sources, rules=None):
    paths = _sources(sources)
    found = check_dimensions(build_graph(paths), paths)
    if rules is not None:
        found = [f for f in found if f.rule in rules]
    return found


# -- the lattice --------------------------------------------------------------

class TestLattice:
    def test_equal_dims_are_compatible(self):
        assert compatible("bytes", "bytes")

    def test_sub_dimension_is_compatible_with_parent(self):
        assert compatible("sim-seconds", "seconds")
        assert compatible("seconds", "wall-seconds")
        assert compatible("frames", "pages")

    def test_siblings_are_incompatible(self):
        assert not compatible("sim-seconds", "wall-seconds")
        assert not compatible("bytes", "pages")
        assert not compatible("joules", "watts")

    def test_meet_picks_the_more_specific(self):
        assert meet("seconds", "sim-seconds") == "sim-seconds"
        assert meet("frames", "pages") == "frames"
        assert meet("joules", "bytes") is None

    def test_name_rules(self):
        assert name_dim("size_bytes") == "bytes"
        assert name_dim("power_watts") == "watts"
        assert name_dim("energy_joules_total") == "joules"
        assert name_dim("duration_s") == "seconds"
        assert name_dim("idle_fraction") == "fraction"
        assert name_dim("now") == "sim-seconds"

    def test_rate_names_have_no_plain_dimension(self):
        assert name_dim("bandwidth_bytes_per_s") is None
        assert name_dim("usd_per_kwh") is None


# -- ZL012: dimension soundness ----------------------------------------------

class TestDimensionSoundness:
    def test_mixed_dimension_add_fires_with_chain(self):
        findings = _findings({
            "fx/energy.py": (
                "def mix(size_bytes, duration_s):\n"
                "    return size_bytes + duration_s\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL012"]
        finding = findings[0]
        assert finding.line == 2
        assert "bytes" in finding.message and "seconds" in finding.message
        assert "parameter 'size_bytes'" in finding.message
        assert "parameter 'duration_s'" in finding.message
        assert finding.fingerprint.startswith("ZL012:fx.energy:mix:")

    def test_interprocedural_return_dim_reaches_caller(self):
        findings = _findings({
            "fx/energy.py": (
                "def idle_watts():\n"
                "    return 65.0\n"
                "def broken(duration_s):\n"
                "    return idle_watts() + duration_s\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL012"]
        assert "return of idle_watts" in findings[0].message

    def test_call_argument_dimension_mismatch(self):
        findings = _findings({
            "fx/energy.py": (
                "def set_power(power_watts):\n"
                "    return power_watts\n"
                "def drive(size_bytes):\n"
                "    set_power(size_bytes)\n"
            ),
        })
        assert any(f.rule == "ZL012" and "power_watts" in f.message
                   and "bytes argument" in f.message for f in findings)

    def test_keyword_convention_on_unresolved_callee(self):
        findings = _findings({
            "fx/audit.py": (
                "def publish(sink, duration_s):\n"
                "    sink.record(capacity_bytes=duration_s)\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL012"]
        assert "capacity_bytes=" in findings[0].message

    def test_declared_return_contract_checked(self):
        findings = _findings({
            "fx/energy.py": (
                "def total_joules(power_watts):\n"
                "    return power_watts\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL012"]
        assert "declares joules" in findings[0].message

    def test_wrong_divisor_constant_fires(self):
        findings = _findings({
            "fx/energy.py": (
                "def gib(energy_joules):\n"
                "    return energy_joules / GiB\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL012"]
        assert "divided by bytes constant GiB" in findings[0].message

    def test_physical_arithmetic_is_clean(self):
        assert _findings({
            "fx/energy.py": (
                "GiB = 1024 ** 3\n"
                "PAGE_SIZE = 4096\n"
                "def frac(used_bytes, total_bytes):\n"
                "    return used_bytes / total_bytes\n"
                "def cap(size_bytes):\n"
                "    return size_bytes / GiB\n"
                "def count(size_bytes):\n"
                "    return size_bytes // PAGE_SIZE\n"
                "def energy(power_watts, duration_s):\n"
                "    return power_watts * duration_s\n"
                "def scaled(size_bytes):\n"
                "    return size_bytes * 4 + size_bytes\n"
                "def derated(power_watts, idle_fraction):\n"
                "    return power_watts * idle_fraction\n"
            ),
        }) == []

    def test_conversion_helper_signature_enforced(self):
        findings = _findings({
            "fx/mon.py": (
                "from repro.units import pages_to_bytes\n"
                "def publish(duration_s):\n"
                "    return pages_to_bytes(duration_s)\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL012"]
        assert "units.pages_to_bytes" in findings[0].message
        assert "expects pages" in findings[0].message

    def test_unknown_dimensions_stay_silent(self):
        assert _findings({
            "fx/misc.py": (
                "def blend(alpha, beta):\n"
                "    return alpha + beta\n"
            ),
        }) == []


# -- ZL013: time-domain separation --------------------------------------------

class TestTimeDomains:
    def test_sim_and_wall_seconds_never_mix(self):
        findings = _findings({
            "fx/mon.py": (
                "import time\n"
                "class Monitor:\n"
                "    def __init__(self, engine):\n"
                "        self.engine = engine\n"
                "    def lag(self):\n"
                "        return time.time() - self.engine.now\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL013"]
        assert "wall-clock time.time()" in findings[0].message
        assert "sim-seconds" in findings[0].message

    def test_sim_timestamp_into_wall_api_fires(self):
        findings = _findings({
            "fx/mon.py": (
                "import time\n"
                "class Monitor:\n"
                "    def __init__(self, engine):\n"
                "        self.engine = engine\n"
                "    def pause(self):\n"
                "        time.sleep(self.engine.now)\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL013"]
        assert "time.sleep" in findings[0].message
        assert "never leave the engine" in findings[0].message

    def test_plain_duration_into_sleep_is_clean(self):
        assert _findings({
            "fx/mon.py": (
                "import time\n"
                "def pause(duration_s):\n"
                "    time.sleep(duration_s)\n"
            ),
        }, rules={"ZL013"}) == []

    def test_sim_durations_flow_into_generic_seconds(self):
        # sim-seconds is a *refinement* of seconds: passing engine time
        # where a generic duration is expected is fine.
        assert _findings({
            "fx/mon.py": (
                "class Monitor:\n"
                "    def __init__(self, engine):\n"
                "        self.engine = engine\n"
                "    def record(self, start_s):\n"
                "        elapsed_s = self.engine.now - start_s\n"
                "        return elapsed_s\n"
            ),
        }) == []


# -- ZL014: metric unit contracts ---------------------------------------------

class TestMetricContracts:
    def test_attr_stored_counter_contract(self):
        findings = _findings({
            "fx/met.py": (
                "class Reporter:\n"
                "    def __init__(self, registry):\n"
                "        self._energy = registry.counter(\n"
                "            'dc_energy_joules_total', 'help')\n"
                "    def push(self, power_watts):\n"
                "        self._energy.inc(power_watts)\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL014"]
        finding = findings[0]
        assert "dc_energy_joules_total" in finding.message
        assert "declares joules" in finding.message
        assert "power_watts" in finding.message

    def test_local_gauge_contract(self):
        findings = _findings({
            "fx/met.py": (
                "def emit(registry, size_bytes):\n"
                "    g = registry.gauge('host_power_watts', 'help')\n"
                "    g.set(size_bytes)\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL014"]

    def test_chained_creator_call_contract(self):
        findings = _findings({
            "fx/met.py": (
                "def emit(registry, size_bytes):\n"
                "    registry.gauge('host_power_watts', 'h').set(size_bytes)\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL014"]

    def test_matching_dimension_is_clean(self):
        assert _findings({
            "fx/met.py": (
                "def emit(registry, energy_joules, power_watts):\n"
                "    registry.counter('dc_energy_joules_total', 'h')"
                ".inc(energy_joules)\n"
                "    registry.gauge('host_power_watts', 'h')"
                ".set(power_watts)\n"
            ),
        }) == []

    def test_sim_seconds_satisfy_seconds_contract(self):
        assert _findings({
            "fx/met.py": (
                "class T:\n"
                "    def __init__(self, engine, registry):\n"
                "        self.engine = engine\n"
                "        self.h = registry.histogram("
                "'req_latency_seconds', 'h')\n"
                "    def sample(self, start_s):\n"
                "        self.h.observe(self.engine.now - start_s)\n"
            ),
        }) == []

    def test_metric_read_dimension_flows_back(self):
        # inputs.value('..._joules_total') carries joules into arithmetic.
        findings = _findings({
            "fx/audit.py": (
                "def zpue(inputs, duration_s):\n"
                "    return inputs.value('dc_energy_joules_total') "
                "+ duration_s\n"
            ),
        })
        assert [f.rule for f in findings] == ["ZL012"]
        assert "metric 'dc_energy_joules_total'" in findings[0].message


# -- tables, suppression, ratchet ---------------------------------------------

class TestPlumbing:
    def test_tree_local_units_table_overrides(self):
        sources = _sources({
            "fx/units.py": (
                "METRIC_UNIT_SUFFIXES = {'_zaps': 'joules'}\n"
            ),
            "fx/met.py": (
                "def emit(registry, power_watts):\n"
                "    registry.counter('foo_zaps', 'h').inc(power_watts)\n"
            ),
        })
        findings = check_dimensions(build_graph(sources), sources)
        assert [f.rule for f in findings] == ["ZL014"]
        tables = load_unit_tables(sources)
        assert tables.metric_dim("foo_zaps") == "joules"
        # Defaults survive the overlay.
        assert tables.metric_dim("x_watts") == "watts"

    def test_line_scoped_suppression(self):
        sources = {
            "fx/energy.py": (
                "def mix(size_bytes, duration_s):\n"
                "    return size_bytes + duration_s"
                "  # zl: ignore[ZL012]\n"
            ),
        }
        assert analyze_sources(_sources(sources),
                               rules=["ZL012", "ZL013", "ZL014"]) == []

    def test_baseline_ratchet_roundtrip(self, tmp_path):
        sources = {
            "fx/energy.py": (
                "def mix(size_bytes, duration_s):\n"
                "    return size_bytes + duration_s\n"
            ),
        }
        findings = analyze_sources(_sources(sources), rules=["ZL012"])
        assert len(findings) == 1
        baseline_path = tmp_path / "flow_baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        new, baselined, burned = diff_against_baseline(findings, baseline)
        assert new == [] and burned == []
        assert [f.fingerprint for f in baselined] == [
            findings[0].fingerprint]

    def test_fingerprint_is_line_free(self):
        base = {
            "fx/energy.py": (
                "def mix(size_bytes, duration_s):\n"
                "    return size_bytes + duration_s\n"
            ),
        }
        shifted = {
            "fx/energy.py": (
                "X = 1\n\n\n"
                "def mix(size_bytes, duration_s):\n"
                "    return size_bytes + duration_s\n"
            ),
        }
        a = _findings(base)
        b = _findings(shifted)
        assert a[0].fingerprint == b[0].fingerprint
        assert a[0].line != b[0].line
