"""Model-based (stateful) testing of the whole rack.

Hypothesis drives random interleavings of the rack's public operations —
Sz entry, wake+reclaim, VM creation/paging/migration/destruction — and
checks the global invariants after every step:

- the controller's byte accounting always balances;
- the secondary's mirrored state always matches the primary's;
- every server's frame accounting is conservative;
- every VM keeps paging correctly no matter what happened around it.
"""

from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.acpi.states import SleepState
from repro.core.rack import Rack
from repro.errors import ReproError
from repro.hypervisor.vm import VmSpec
from repro.units import MiB

SERVERS = ["s0", "s1", "s2", "s3"]


class RackMachine(RuleBasedStateMachine):
    @initialize()
    def build(self):
        self.rack = Rack(SERVERS, memory_bytes=96 * MiB, buff_size=4 * MiB)
        self.vms = {}          # name -> host
        self.counter = 0

    # -- operations ---------------------------------------------------------
    @rule(index=st.integers(0, 3))
    def make_zombie(self, index):
        server = self.rack.server(SERVERS[index])
        if server.state is SleepState.S0 and server.vm_count == 0:
            self.rack.make_zombie(server.name)

    @rule(index=st.integers(0, 3), fraction=st.sampled_from([0.25, 1.0]))
    def wake(self, index, fraction):
        server = self.rack.server(SERVERS[index])
        if server.is_zombie:
            self.rack.wake(server.name,
                           reclaim_bytes=int(server.manager.lent_bytes
                                             * fraction))

    @rule(index=st.integers(0, 3),
          mem_mib=st.sampled_from([8, 16]),
          local=st.sampled_from([0.5, 1.0]))
    def create_vm(self, index, mem_mib, local):
        server = self.rack.server(SERVERS[index])
        if server.state is not SleepState.S0:
            return
        name = f"vm{self.counter}"
        self.counter += 1
        try:
            self.rack.create_vm(server.name, VmSpec(name, mem_mib * MiB),
                                local_fraction=local)
        except ReproError:
            return  # rack genuinely full: a legal refusal
        self.vms[name] = server.name

    @rule(pick=st.integers(0, 10 ** 6), pages=st.integers(1, 64))
    def touch_pages(self, pick, pages):
        if not self.vms:
            return
        name = sorted(self.vms)[pick % len(self.vms)]
        host = self.vms[name]
        hv = self.rack.server(host).hypervisor
        vm = hv.vms[name]
        for ppn in range(min(pages, vm.spec.total_pages)):
            hv.access(vm, ppn)

    @rule(pick=st.integers(0, 10 ** 6), dst_index=st.integers(0, 3))
    def migrate_vm(self, pick, dst_index):
        if not self.vms:
            return
        name = sorted(self.vms)[pick % len(self.vms)]
        src = self.vms[name]
        dst = SERVERS[dst_index]
        dst_server = self.rack.server(dst)
        if dst == src or dst_server.state is not SleepState.S0:
            return
        vm = self.rack.server(src).hypervisor.vms[name]
        needed = vm.table.resident_pages
        if needed > dst_server.allocator.free_frames:
            return
        self.rack.migrate_vm(name, src, dst)
        self.vms[name] = dst

    @rule(pick=st.integers(0, 10 ** 6))
    def destroy_vm(self, pick):
        if not self.vms:
            return
        name = sorted(self.vms)[pick % len(self.vms)]
        host = self.vms.pop(name)
        self.rack.destroy_vm(host, name)

    @rule(delay=st.sampled_from([0.5, 2.0]))
    def advance_time(self, delay):
        self.rack.engine.advance(delay)

    # -- invariants --------------------------------------------------------
    @invariant()
    def controller_accounting_balances(self):
        if not hasattr(self, "rack"):
            return
        db = self.rack.controller.db
        allocated = sum(b.size_bytes for b in db.all_buffers()
                        if b.allocated)
        assert db.total_bytes() == db.free_bytes() + allocated

    @invariant()
    def secondary_mirror_in_sync(self):
        if not hasattr(self, "rack"):
            return
        if self.rack.secondary.promoted is not None:
            return
        assert len(self.rack.secondary.db) == len(self.rack.controller.db)
        assert (self.rack.secondary.zombie_hosts
                == self.rack.controller.zombie_hosts)

    @invariant()
    def frame_accounting_conservative(self):
        if not hasattr(self, "rack"):
            return
        for server in self.rack.servers.values():
            allocator = server.allocator
            assert (allocator.free_frames + allocator.used_frames
                    == allocator.total_frames)
            vm_frames = sum(vm.local_frames_used
                            for vm in server.hypervisor.vms.values())
            assert vm_frames <= allocator.used_frames

    @invariant()
    def zombie_hosts_agree_with_platforms(self):
        if not hasattr(self, "rack"):
            return
        zombies = {s.name for s in self.rack.servers.values()
                   if s.is_zombie}
        assert zombies == self.rack.controller.zombie_hosts

    @invariant()
    def every_vm_still_pages(self):
        if not hasattr(self, "rack"):
            return
        for name, host in self.vms.items():
            hv = self.rack.server(host).hypervisor
            vm = hv.vms[name]
            hv.access(vm, 0)  # must never raise
            assert vm.table.resident_pages + vm.table.remote_pages \
                <= vm.spec.total_pages


RackMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None,
)
TestStatefulRack = RackMachine.TestCase
