"""Energy profiles, equation (1), Fig. 1/Fig. 4 models, the meter."""

import math

import pytest

from repro.acpi.states import SleepState
from repro.energy.meter import EnergyMeter
from repro.energy.model import (S5_FRACTION, energy_proportionality_curve,
                                estimate_sz_fraction, rack_scenarios,
                                server_power_fraction, server_power_watts)
from repro.energy.profiles import (DELL_PROFILE, HP_PROFILE, MachineProfile,
                                   PowerConfig)
from repro.errors import ConfigurationError, SimulationError


class TestProfiles:
    def test_hp_table3_row(self):
        f = HP_PROFILE.fraction
        assert f(PowerConfig.S0_WO_IB) == pytest.approx(0.4616)
        assert f(PowerConfig.S3_W_IB) == pytest.approx(0.1103)
        assert f(PowerConfig.S4_WO_IB) == pytest.approx(0.0019)

    def test_dell_table3_row(self):
        f = DELL_PROFILE.fraction
        assert f(PowerConfig.S0_W_IB_ON) == pytest.approx(0.4477)
        assert f(PowerConfig.S3_WO_IB) == pytest.approx(0.0197)

    def test_watts_scales_fractions(self):
        watts = HP_PROFILE.watts(PowerConfig.S0_WO_IB)
        assert watts == pytest.approx(0.4616 * HP_PROFILE.max_power_watts)

    def test_missing_config_rejected(self):
        with pytest.raises(ConfigurationError):
            MachineProfile("bad", 100.0, {PowerConfig.S0_WO_IB: 0.5})

    def test_out_of_range_fraction_rejected(self):
        fractions = {c: 0.5 for c in PowerConfig}
        fractions[PowerConfig.S3_W_IB] = 1.5
        with pytest.raises(ConfigurationError):
            MachineProfile("bad", 100.0, fractions)


class TestEquationOne:
    def test_hp_sz_matches_table3(self):
        assert estimate_sz_fraction(HP_PROFILE) == pytest.approx(0.1267)

    def test_dell_sz_matches_table3(self):
        assert estimate_sz_fraction(DELL_PROFILE) == pytest.approx(0.1115)

    def test_sz_between_s3_and_s0(self):
        for profile in (HP_PROFILE, DELL_PROFILE):
            sz = estimate_sz_fraction(profile)
            assert profile.fraction(PowerConfig.S3_W_IB) < sz
            assert sz < profile.fraction(PowerConfig.S0_W_IB_OFF)


class TestServerPower:
    def test_s0_scales_with_utilization(self):
        low = server_power_fraction(HP_PROFILE, SleepState.S0, 0.1)
        high = server_power_fraction(HP_PROFILE, SleepState.S0, 0.9)
        assert low < high
        assert server_power_fraction(HP_PROFILE, SleepState.S0, 1.0) == 1.0

    def test_s0_idle_point(self):
        idle = server_power_fraction(HP_PROFILE, SleepState.S0, 0.0)
        assert idle == pytest.approx(0.5384)

    def test_sleep_states_ignore_utilization_argument(self):
        assert (server_power_fraction(HP_PROFILE, SleepState.S3)
                == HP_PROFILE.fraction(PowerConfig.S3_W_IB))
        assert server_power_fraction(HP_PROFILE, SleepState.S5) == S5_FRACTION

    def test_sz_uses_equation_one(self):
        assert (server_power_fraction(HP_PROFILE, SleepState.SZ)
                == estimate_sz_fraction(HP_PROFILE))

    def test_invalid_utilization(self):
        with pytest.raises(ConfigurationError):
            server_power_fraction(HP_PROFILE, SleepState.S0, 1.5)

    def test_watts_wrapper(self):
        watts = server_power_watts(HP_PROFILE, SleepState.S0, 0.5)
        assert watts == pytest.approx(
            server_power_fraction(HP_PROFILE, SleepState.S0, 0.5)
            * HP_PROFILE.max_power_watts
        )


class TestFig1Curve:
    def test_endpoints(self):
        series = energy_proportionality_curve(points=11)
        assert series[0] == (0.0, 50.0, 0.0)
        assert series[-1] == (100.0, 100.0, 100.0)

    def test_actual_always_at_or_above_ideal(self):
        for _, actual, ideal in energy_proportionality_curve():
            assert actual >= ideal

    def test_profile_sets_idle_point(self):
        series = energy_proportionality_curve(profile=DELL_PROFILE, points=3)
        assert series[0][1] == pytest.approx(DELL_PROFILE.idle_fraction * 100)

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            energy_proportionality_curve(points=1)


class TestFig4Scenarios:
    def test_paper_totals(self):
        totals = {s.name: s.total_energy for s in rack_scenarios()}
        assert totals["server-centric"] == pytest.approx(2.1)
        assert totals["resource disaggregation (ideal)"] == pytest.approx(1.15)
        assert totals["micro-servers"] == pytest.approx(1.8, abs=0.05)
        assert totals["zombie (this paper)"] == pytest.approx(1.2)

    def test_zombie_close_to_ideal(self):
        scenarios = {s.name: s.total_energy for s in rack_scenarios()}
        ideal = scenarios["resource disaggregation (ideal)"]
        zombie = scenarios["zombie (this paper)"]
        server_centric = scenarios["server-centric"]
        assert abs(zombie - ideal) < 0.25 * (server_centric - ideal)

    def test_ordering(self):
        totals = [s.total_energy for s in rack_scenarios()]
        server_centric, ideal, micro, zombie = totals
        assert ideal < zombie < micro < server_centric

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            rack_scenarios(idle_fraction=0.0)
        with pytest.raises(ConfigurationError):
            rack_scenarios(sz_fraction=1.5)


class TestEnergyMeter:
    def test_piecewise_integration(self):
        meter = EnergyMeter()
        meter.set_power(0.0, 100.0)
        meter.set_power(10.0, 50.0)
        meter.advance(20.0)
        assert meter.joules == pytest.approx(100 * 10 + 50 * 10)

    def test_kwh_conversion(self):
        meter = EnergyMeter()
        meter.accumulate(1000.0, 3600.0)
        assert meter.kwh == pytest.approx(1.0)

    def test_time_cannot_go_backwards(self):
        meter = EnergyMeter()
        meter.advance(10.0)
        with pytest.raises(SimulationError):
            meter.advance(5.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            EnergyMeter().accumulate(10.0, -1.0)

    def test_segments_recorded(self):
        meter = EnergyMeter()
        meter.set_power(0.0, 10.0)
        meter.set_power(5.0, 20.0)
        meter.advance(7.0)
        assert meter.segments == [(0.0, 5.0, 10.0), (5.0, 7.0, 20.0)]
