"""The split-driver Explicit SD: elastic, revocable remote swap."""

import pytest

from repro.core.rack import Rack
from repro.hypervisor.explicit_sd import ExplicitSdVm
from repro.hypervisor.split_driver import SplitDriverSwap
from repro.hypervisor.vm import VmSpec
from repro.memory.buffers import LOCAL_FALLBACK_S
from repro.units import MiB, PAGE_SIZE


@pytest.fixture
def rack():
    r = Rack(["user", "zombie"], memory_bytes=128 * MiB, buff_size=4 * MiB)
    r.make_zombie("zombie")
    return r


def _device(rack, capacity_pages=4096, grow_mib=4):
    return SplitDriverSwap(rack.server("user").manager,
                           capacity_pages=capacity_pages,
                           grow_step_bytes=grow_mib * MiB)


class TestElasticGrowth:
    def test_starts_with_no_remote_memory(self, rack):
        device = _device(rack)
        assert device.store.total_slots == 0

    def test_first_swap_triggers_allocation(self, rack):
        device = _device(rack)
        device.swap_out("page-0", b"data")
        assert device.grow_requests == 1
        assert device.grow_granted_bytes == 4 * MiB
        assert device.remote_fraction() == 1.0

    def test_growth_is_stepwise(self, rack):
        device = _device(rack, grow_mib=4)
        pages_per_step = (4 * MiB) // PAGE_SIZE
        for i in range(pages_per_step + 1):
            device.swap_out(i)
        assert device.grow_requests == 2

    def test_round_trip(self, rack):
        device = _device(rack)
        device.swap_out("k", b"split-driver")
        data, _ = device.swap_in("k")
        assert data[:12] == b"split-driver"


class TestLocalFallback:
    def test_exhausted_rack_falls_back_to_local(self, rack):
        # Drain the zombie pool into another store first.
        manager = rack.server("user").manager
        hoard, granted = manager.request_swap(1024 * MiB)
        device = _device(rack)
        device.swap_out("k", b"precious")
        assert device.local_pages == 1
        assert device.remote_fraction() == 0.0
        data, elapsed = device.swap_in("k")
        assert data[:8] == b"precious"
        assert elapsed >= LOCAL_FALLBACK_S  # the slower path

    def test_repair_after_pool_frees_up(self, rack):
        manager = rack.server("user").manager
        hoard, _ = manager.request_swap(1024 * MiB)
        device = _device(rack)
        device.swap_out("k", b"x")
        assert device.local_pages == 1
        manager.release_store(hoard)  # pool memory returns
        restored = device.repair()
        assert restored == 1
        assert device.remote_fraction() == 1.0

    def test_reclaim_moves_pages_to_local_then_repair(self, rack):
        device = _device(rack)
        for i in range(8):
            device.swap_out(i, b"v%d" % i)
        # The zombie wakes and takes everything back.
        rack.wake("zombie", reclaim_bytes=128 * MiB)
        for i in range(8):
            data, _ = device.swap_in(i)
            assert data[:1] == b"v"


class TestGuestIntegration:
    def test_explicit_sd_vm_over_split_driver(self, rack):
        spec = VmSpec("sd", 64 * PAGE_SIZE)
        device = _device(rack, capacity_pages=128)
        guest = ExplicitSdVm(spec, 16 * PAGE_SIZE, device, watermark=1.0)
        for ppn in range(64):
            guest.access(ppn)
        assert device.swap_outs > 0
        assert device.grow_requests >= 1
        # Faulting an evicted page swaps in through the backend.
        victim = next(p for p in range(64)
                      if not guest.table.entry(p).present)
        guest.access(victim)
        assert device.swap_ins == 1
