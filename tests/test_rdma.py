"""The RDMA fabric: MRs, QPs, one-sided verbs, RPC, power gating."""

import pytest

from repro.acpi.platform import build_platform
from repro.acpi.states import SleepState
from repro.errors import (MemoryRegionError, QueuePairError, RdmaError,
                          RpcError, RpcTimeoutError)
from repro.rdma.costs import RdmaCostModel
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import RpcClient, RpcServer
from repro.rdma.verbs import AccessFlags, MemoryRegion, QpState, QueuePair
from repro.units import GiB, MiB, PAGE_SIZE


class TestMemoryRegion:
    def test_write_read_round_trip(self):
        mr = MemoryRegion("owner", 8192)
        mr.write(100, b"zombieland")
        assert mr.read(100, 10) == b"zombieland"

    def test_unwritten_ranges_read_zero(self):
        mr = MemoryRegion("owner", 8192)
        assert mr.read(0, 16) == bytes(16)

    def test_cross_chunk_write(self):
        mr = MemoryRegion("owner", 3 * 4096)
        payload = bytes(range(256)) * 32  # 8 KiB spanning chunks
        mr.write(4000, payload)
        assert mr.read(4000, len(payload)) == payload

    def test_sparse_backing_is_lazy(self):
        mr = MemoryRegion("owner", 1 * GiB)
        assert mr.resident_bytes == 0
        mr.write(123 * PAGE_SIZE, b"x")
        assert mr.resident_bytes == 4096

    def test_zero_writes_need_no_backing(self):
        mr = MemoryRegion("owner", 1 * MiB)
        mr.write(0, bytes(PAGE_SIZE))
        assert mr.resident_bytes == 0
        assert mr.read(0, PAGE_SIZE) == bytes(PAGE_SIZE)

    def test_zero_overwrite_clears_previous_content(self):
        mr = MemoryRegion("owner", 1 * MiB)
        mr.write(0, b"data")
        mr.write(0, bytes(4))
        assert mr.read(0, 4) == bytes(4)

    def test_out_of_bounds_rejected(self):
        mr = MemoryRegion("owner", 100)
        with pytest.raises(MemoryRegionError):
            mr.read(90, 20)
        with pytest.raises(MemoryRegionError):
            mr.write(99, b"ab")

    def test_invalidated_mr_rejects_access(self):
        mr = MemoryRegion("owner", 100)
        mr.invalidate()
        with pytest.raises(MemoryRegionError):
            mr.read(0, 1)

    def test_permission_enforcement(self):
        mr = MemoryRegion("owner", 100, access=AccessFlags.REMOTE_READ)
        mr._chunks  # readable
        with pytest.raises(MemoryRegionError):
            mr.write(0, b"x")

    def test_rkeys_are_unique(self):
        assert MemoryRegion("a", 10).rkey != MemoryRegion("a", 10).rkey


class TestQueuePair:
    def test_connect_reaches_rts(self):
        qp = QueuePair("a", "b")
        qp.connect()
        assert qp.state is QpState.RTS

    def test_illegal_transition_rejected(self):
        qp = QueuePair("a", "b")
        with pytest.raises(QueuePairError):
            qp.modify(QpState.RTS)  # RESET -> RTS skips INIT/RTR

    def test_work_requires_rts(self):
        qp = QueuePair("a", "b")
        with pytest.raises(QueuePairError):
            qp.require_rts()

    def test_destroy_resets(self):
        qp = QueuePair("a", "b")
        qp.connect()
        qp.destroy()
        assert qp.state is QpState.RESET


class TestOneSidedVerbs:
    def _pair(self):
        fabric = Fabric()
        a = fabric.add_node("a")
        b = fabric.add_node("b")
        mr = b.register_mr(64 * 1024)
        qp = a.connect_qp("b")
        return fabric, a, b, mr, qp

    def test_write_then_read(self):
        _, a, _, mr, qp = self._pair()
        a.rdma_write(qp, mr.rkey, 0, b"hello rack")
        assert a.rdma_read(qp, mr.rkey, 0, 10) == b"hello rack"

    def test_timing_returned(self):
        fabric, a, _, mr, qp = self._pair()
        elapsed = a.rdma_write_timed(qp, mr.rkey, 0, b"x" * PAGE_SIZE)
        assert elapsed == pytest.approx(
            fabric.costs.transfer_time(PAGE_SIZE)
        )

    def test_stats_accumulate(self):
        fabric, a, _, mr, qp = self._pair()
        a.rdma_write(qp, mr.rkey, 0, b"abc")
        a.rdma_read(qp, mr.rkey, 0, 3)
        assert fabric.stats.writes == 1
        assert fabric.stats.reads == 1
        assert fabric.stats.bytes_written == 3
        assert fabric.stats.bytes_read == 3
        assert fabric.stats.busy_seconds > 0

    def test_unknown_rkey_rejected(self):
        _, a, _, _, qp = self._pair()
        with pytest.raises(MemoryRegionError):
            a.rdma_read(qp, 0xDEAD, 0, 1)

    def test_foreign_qp_rejected(self):
        fabric, a, b, mr, _ = self._pair()
        qp_b = b.connect_qp("a")
        with pytest.raises(RdmaError):
            a.rdma_read(qp_b, mr.rkey, 0, 1)

    def test_duplicate_node_name_rejected(self):
        fabric = Fabric()
        fabric.add_node("x")
        with pytest.raises(RdmaError):
            fabric.add_node("x")


class TestPowerGating:
    def _gated(self):
        fabric = Fabric()
        user = fabric.add_node("user")
        platform = build_platform("target", memory_bytes=1 * GiB)
        target = fabric.add_node("target", platform=platform)
        mr = target.register_mr(1 * MiB)
        qp = user.connect_qp("target")
        return fabric, user, platform, mr, qp

    def test_zombie_serves_one_sided_verbs(self):
        _, user, platform, mr, qp = self._gated()
        user.rdma_write(qp, mr.rkey, 0, b"before")
        platform.go_zombie()
        assert user.rdma_read(qp, mr.rkey, 0, 6) == b"before"
        user.rdma_write(qp, mr.rkey, 0, b"during")  # writes too

    def test_s3_blocks_one_sided_verbs(self):
        _, user, platform, mr, qp = self._gated()
        platform.suspend(SleepState.S3)
        with pytest.raises(RdmaError):
            user.rdma_read(qp, mr.rkey, 0, 1)

    def test_s5_blocks_one_sided_verbs(self):
        _, user, platform, mr, qp = self._gated()
        platform.suspend(SleepState.S5)
        with pytest.raises(RdmaError):
            user.rdma_write(qp, mr.rkey, 0, b"x")

    def test_suspended_initiator_cannot_post(self):
        fabric = Fabric()
        platform = build_platform("init", memory_bytes=1 * GiB)
        initiator = fabric.add_node("init", platform=platform)
        target = fabric.add_node("tgt")
        mr = target.register_mr(1 * MiB)
        qp = initiator.connect_qp("tgt")
        platform.go_zombie()
        with pytest.raises(RdmaError):
            initiator.rdma_read(qp, mr.rkey, 0, 1)

    def test_wake_restores_service(self):
        _, user, platform, mr, qp = self._gated()
        platform.suspend(SleepState.S3)
        platform.wake()
        user.rdma_write(qp, mr.rkey, 0, b"ok")


class TestRpc:
    def _endpoints(self, with_platform=False):
        fabric = Fabric()
        platform = None
        if with_platform:
            platform = build_platform("srv", memory_bytes=1 * GiB)
        server_node = fabric.add_node("srv", platform=platform)
        client_node = fabric.add_node("cli")
        server = RpcServer(server_node)
        client = RpcClient(client_node, server)
        return fabric, server, client, platform

    def test_call_round_trip(self):
        _, server, client, _ = self._endpoints()
        server.register("add", lambda a, b: a + b)
        assert client.call("add", 2, 3) == 5

    def test_kwargs_pass_through(self):
        _, server, client, _ = self._endpoints()
        server.register("fmt", lambda x, pad=0: str(x).rjust(pad))
        assert client.call("fmt", 7, pad=3) == "  7"

    def test_unknown_method(self):
        _, server, client, _ = self._endpoints()
        with pytest.raises(RpcError):
            client.call("nope")

    def test_duplicate_registration(self):
        _, server, _, _ = self._endpoints()
        server.register("m", lambda: None)
        with pytest.raises(RpcError):
            server.register("m", lambda: None)

    def test_zombie_server_times_out(self):
        _, server, client, platform = self._endpoints(with_platform=True)
        server.register("ping", lambda: "pong")
        platform.go_zombie()
        with pytest.raises(RpcTimeoutError):
            client.call("ping")

    def test_polling_accounted(self):
        _, server, client, _ = self._endpoints()
        server.register("ping", lambda: "pong")
        client.call("ping")
        assert client.polls >= 1
        assert client.time_spent_s > 0

    def test_call_timed_returns_elapsed(self):
        fabric, server, client, _ = self._endpoints()
        server.register("ping", lambda: "pong")
        result, elapsed = client.call_timed("ping")
        assert result == "pong"
        assert elapsed == pytest.approx(fabric.costs.rpc_time())

    def test_rpc_slower_than_one_sided(self):
        costs = RdmaCostModel()
        assert costs.rpc_time() > costs.transfer_time(PAGE_SIZE)


class TestCostModel:
    def test_transfer_time_grows_with_size(self):
        costs = RdmaCostModel()
        assert costs.transfer_time(1) < costs.transfer_time(1 * MiB)

    def test_ordering_local_rdma(self):
        costs = RdmaCostModel()
        assert costs.local_page_access_s < costs.transfer_time(PAGE_SIZE)

    def test_negative_size_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            RdmaCostModel().transfer_time(-1)

    def test_invalid_bandwidth_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            RdmaCostModel(bandwidth_bytes_per_s=0)
