"""Causal spans: nesting, wire context, ring bound, forest validation."""

import pytest

from repro.obs.tracing import (NULL_SPAN, Span, Tracer, span_forest_errors)


class TestSpanNesting:
    def test_root_span_mints_a_trace(self):
        tracer = Tracer()
        with tracer.span("root") as handle:
            pass
        (span,) = tracer.finished()
        assert span.parent_id is None
        assert span.trace_id != span.span_id

    def test_stack_nesting_builds_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_context() == inner.context
            assert tracer.current_context() == outer.context
        inner_span = tracer.finished("inner")[0]
        outer_span = tracer.finished("outer")[0]
        assert inner_span.parent_id == outer_span.span_id
        assert inner_span.trace_id == outer_span.trace_id
        assert span_forest_errors(tracer.finished()) == []

    def test_explicit_parent_attaches_across_the_fabric(self):
        tracer = Tracer()
        with tracer.span("call") as call:
            remote_ctx = call.context
        # The "server side": nothing on the stack, parent from the wire.
        tracer.push_wire_context(remote_ctx)
        with tracer.span("serve", parent=tracer.wire_context()):
            pass
        tracer.pop_wire_context()
        serve = tracer.finished("serve")[0]
        assert serve.parent_id == call.span.span_id
        assert serve.trace_id == call.span.trace_id

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert span.tags["error"] == "ValueError"

    def test_out_of_order_finish_closes_inner_spans(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        tracer.span("inner")  # never explicitly closed
        tracer.finish(outer)
        assert {s.name for s in tracer.finished()} == {"outer", "inner"}
        assert tracer._stack == []

    def test_preset_end_time_is_preserved(self):
        now = [0.0]
        tracer = Tracer(clock=lambda: now[0])
        with tracer.span("rpc") as handle:
            # Sim time does not flow during a synchronous handler; the
            # cost model sets the width explicitly.
            handle.span.end_s = handle.span.start_s + 0.125
        assert tracer.finished("rpc")[0].duration_s == 0.125

    def test_double_finish_is_idempotent(self):
        tracer = Tracer()
        handle = tracer.span("once")
        tracer.finish(handle)
        tracer.finish(handle)
        assert len(tracer.finished()) == 1


class TestTracerModes:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        handle = tracer.span("ignored")
        assert handle is NULL_SPAN
        with handle:
            handle.set_tag("k", "v")
        tracer.sample("power", 40.0)
        assert tracer.finished() == []
        assert tracer.samples == []
        assert tracer.current_context() is None

    def test_ring_buffer_bounds_finished_spans(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished()) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.finished()] == ["s2", "s3", "s4"]

    def test_timeline_samples_take_explicit_timestamps(self):
        now = [5.0]
        tracer = Tracer(clock=lambda: now[0])
        tracer.sample("power", 120.0, track="rack", time_s=3600.0)
        tracer.sample("power", 90.0)
        assert [(s.time_s, s.value) for s in tracer.samples] == [
            (3600.0, 120.0), (5.0, 90.0),
        ]

    def test_trace_and_slowest_queries(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            a.span.end_s = a.span.start_s + 3.0
        with tracer.span("b") as b:
            b.span.end_s = b.span.start_s + 7.0
        assert [s.name for s in tracer.slowest(2)] == ["b", "a"]
        a_span = tracer.finished("a")[0]
        assert tracer.trace(a_span.trace_id) == [a_span]


class TestForestValidation:
    def test_multiple_roots_in_one_trace_reported(self):
        spans = [
            Span(trace_id=1, span_id=2, parent_id=None, name="r1", start_s=0),
            Span(trace_id=1, span_id=3, parent_id=None, name="r2", start_s=0),
        ]
        (problem,) = span_forest_errors(spans)
        assert "2 roots" in problem

    def test_dangling_parent_reported(self):
        spans = [
            Span(trace_id=1, span_id=2, parent_id=None, name="r", start_s=0),
            Span(trace_id=1, span_id=3, parent_id=99, name="lost", start_s=0),
        ]
        problems = span_forest_errors(spans)
        assert any("dangling parent 99" in p for p in problems)

    def test_clean_forest_is_quiet(self):
        spans = [
            Span(trace_id=1, span_id=2, parent_id=None, name="r", start_s=0),
            Span(trace_id=1, span_id=3, parent_id=2, name="c", start_s=0),
            Span(trace_id=9, span_id=10, parent_id=None, name="other",
                 start_s=0),
        ]
        assert span_forest_errors(spans) == []
