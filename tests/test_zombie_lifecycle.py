"""Zombie lifecycle management: S3 demotion and the hourly swap top-up."""

import pytest

from repro.acpi.states import SleepState
from repro.cloud.zombiestack import ZombieStackOrchestrator
from repro.core.rack import Rack
from repro.hypervisor.vm import VmSpec
from repro.units import MiB, PAGE_SIZE


def _rack(n=4):
    return Rack([f"s{i}" for i in range(n)], memory_bytes=128 * MiB,
                buff_size=8 * MiB)


class TestZombieDemotion:
    def test_surplus_zombies_demoted_to_s3(self):
        rack = _rack(4)
        orch = ZombieStackOrchestrator(rack)
        for name in ("s1", "s2", "s3"):
            rack.make_zombie(name)
        demoted = orch.demote_surplus_zombies()
        # Keep ≥ one server's slack in Sz; the rest drop to S3.
        assert demoted
        for name in demoted:
            assert rack.server(name).state is SleepState.S3
        remaining = rack.pool_summary()["free_bytes"]
        assert remaining >= 112 * MiB  # one server's lendable memory

    def test_zombies_with_allocated_buffers_stay(self):
        rack = _rack(4)
        orch = ZombieStackOrchestrator(rack)
        for name in ("s2", "s3"):
            rack.make_zombie(name)
        vm = rack.create_vm("s0", VmSpec("vm", 96 * MiB),
                            local_fraction=0.5)
        counts = rack.controller.db.allocated_count_by_host()
        users = {h for h, c in counts.items() if c > 0}
        demoted = orch.demote_surplus_zombies()
        for name in demoted:
            assert name not in users

    def test_no_demotion_when_pool_is_tight(self):
        rack = _rack(2)
        orch = ZombieStackOrchestrator(rack)
        rack.make_zombie("s1")  # the only zombie = the only slack
        assert orch.demote_surplus_zombies() == []
        assert rack.server("s1").is_zombie

    def test_consolidate_includes_demotion(self):
        rack = _rack(5)
        orch = ZombieStackOrchestrator(rack)
        report = orch.consolidate()  # parks empties in Sz, then trims
        assert report.new_zombies
        states = {s.name: s.state for s in rack.servers.values()}
        assert SleepState.S3 in states.values() or len(
            rack.zombie_servers()) <= 2


class TestSwapTopUp:
    def test_hourly_growth_toward_target(self):
        rack = _rack(3)
        rack.make_zombie("s2")
        manager = rack.server("s0").manager
        store, granted = manager.request_swap(8 * MiB)
        process = manager.schedule_swap_topup(
            rack.engine, store, target_bytes=32 * MiB, period_s=3600.0
        )
        assert store.total_slots * PAGE_SIZE == 8 * MiB
        rack.engine.run(until=3601.0)
        assert store.total_slots * PAGE_SIZE >= 32 * MiB
        process.stop()

    def test_topup_rehomes_fallback_pages(self):
        rack = _rack(2)  # s0 user, s2... only s0 and s1 exist
        manager = rack.server("s0").manager
        rack.make_zombie("s1")
        store, _ = manager.request_swap(8 * MiB)
        # Fill, then lose everything to a reclaim; with no other server
        # lending, the pages land on the local mirror.
        keys = [store.store(b"x")[0] for _ in range(64)]
        # Wake at the server level: no rack-driven store repair runs, so
        # the pages stay stranded on the local mirror.
        rack.server("s1").wake(reclaim_bytes=128 * MiB)
        assert store.fallback_count > 0
        rack.make_zombie("s1")  # capacity returns
        manager.schedule_swap_topup(rack.engine, store,
                                    target_bytes=8 * MiB, period_s=600.0)
        rack.engine.run(until=601.0)
        assert store.fallback_count == 0
        for key in keys[:8]:
            data, _ = store.load(key)
            assert data[:1] == b"x"

    def test_stop_halts_topups(self):
        rack = _rack(3)
        rack.make_zombie("s2")
        manager = rack.server("s0").manager
        store, _ = manager.request_swap(0)
        process = manager.schedule_swap_topup(rack.engine, store,
                                              target_bytes=32 * MiB,
                                              period_s=600.0)
        process.stop()
        rack.engine.run(until=6000.0)
        assert store.total_slots == 0
