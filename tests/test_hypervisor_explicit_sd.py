"""The Explicit SD guest: watermarked RAM + swap device paging."""

import pytest

from repro.errors import ConfigurationError
from repro.hypervisor.explicit_sd import ExplicitSdVm
from repro.hypervisor.vm import VmSpec
from repro.memory.swap import SsdSwap
from repro.units import PAGE_SIZE


def _guest(vm_pages=16, ram_pages=8, watermark=1.0, **kwargs):
    spec = VmSpec("sd-vm", vm_pages * PAGE_SIZE)
    device = SsdSwap(capacity_pages=vm_pages * 2)
    guest = ExplicitSdVm(spec, ram_pages * PAGE_SIZE, device,
                         watermark=watermark, **kwargs)
    return guest, device


class TestConstruction:
    def test_watermark_shrinks_usable_ram(self):
        guest, _ = _guest(ram_pages=10, watermark=0.8)
        assert guest.usable_frames == 8

    def test_invalid_watermark(self):
        with pytest.raises(ConfigurationError):
            _guest(watermark=0.0)

    def test_guest_ram_cannot_exceed_vm(self):
        spec = VmSpec("v", 4 * PAGE_SIZE)
        with pytest.raises(ConfigurationError):
            ExplicitSdVm(spec, 8 * PAGE_SIZE, SsdSwap(4))


class TestGuestPaging:
    def test_within_ram_no_swap(self):
        guest, device = _guest(vm_pages=8, ram_pages=8)
        for ppn in range(8):
            guest.access(ppn)
        assert device.swap_outs == 0
        assert guest.stats.page_faults == 8  # demand allocation only

    def test_swap_out_when_ram_exhausted(self):
        guest, device = _guest(vm_pages=16, ram_pages=4)
        for ppn in range(8):
            guest.access(ppn)
        assert device.swap_outs == 4
        assert guest.table.resident_pages == 4

    def test_swap_in_on_refault(self):
        guest, device = _guest(vm_pages=16, ram_pages=4)
        for ppn in range(8):
            guest.access(ppn)
        victim = next(p for p in range(8)
                      if not guest.table.entry(p).present)
        guest.access(victim)
        assert device.swap_ins == 1
        assert guest.table.entry(victim).present

    def test_io_overhead_charged(self):
        cheap, dev1 = _guest(vm_pages=16, ram_pages=4, io_overhead_s=0.0)
        costly, dev2 = _guest(vm_pages=16, ram_pages=4, io_overhead_s=1e-3)
        t_cheap = sum(cheap.access(p) for p in range(8))
        t_costly = sum(costly.access(p) for p in range(8))
        assert t_costly > t_cheap

    def test_idle_drains_device_backlog(self):
        guest, device = _guest(vm_pages=16, ram_pages=4)
        for ppn in range(8):
            guest.access(ppn)
        assert device.backlog_s > 0
        guest.idle(10.0)
        assert device.backlog_s == 0.0
