"""Deterministic RNG helpers."""

import pytest

from repro.sim.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork(3)
        b = DeterministicRng(7).fork(3)
        assert a.random() == b.random()

    def test_fork_streams_are_independent(self):
        base = DeterministicRng(7)
        assert base.fork(1).random() != base.fork(2).random()


class TestZipf:
    def test_values_in_range(self):
        rng = DeterministicRng(1)
        samples = [rng.zipf(100, 1.0) for _ in range(500)]
        assert all(0 <= s < 100 for s in samples)

    def test_low_ranks_most_popular(self):
        rng = DeterministicRng(1)
        samples = [rng.zipf(1000, 1.2) for _ in range(5000)]
        top_decile = sum(1 for s in samples if s < 100)
        assert top_decile > len(samples) * 0.5

    def test_higher_alpha_more_skew(self):
        low = DeterministicRng(1)
        high = DeterministicRng(1)
        low_hits = sum(1 for _ in range(3000) if low.zipf(1000, 0.8) < 10)
        high_hits = sum(1 for _ in range(3000) if high.zipf(1000, 2.0) < 10)
        assert high_hits > low_hits

    def test_single_element(self):
        assert DeterministicRng(1).zipf(1, 1.0) == 0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).zipf(0, 1.0)


class TestLognormalClamped:
    def test_within_bounds(self):
        rng = DeterministicRng(3)
        for _ in range(200):
            value = rng.lognormal_clamped(0.0, 2.0, lo=0.5, hi=3.0)
            assert 0.5 <= value <= 3.0

    def test_mean_tracks_mu(self):
        rng = DeterministicRng(3)
        import math
        samples = [rng.lognormal_clamped(math.log(10), 0.1, lo=0.1, hi=1000)
                   for _ in range(2000)]
        mean = sum(samples) / len(samples)
        assert 9.0 < mean < 11.0
