"""MemSan: one injected defect per finding class, plus clean-run checks.

Each defect test bypasses a *runtime* guard the way a real bug would (a
lingering MR registration, a stale ``remote_ok`` cache, a handler that
forgot to fence) and asserts MemSan's independent shadow state still
catches the silent violation.  The defended-path tests assert the converse:
an operation the runtime already rejected is not double-reported.
"""

import gc

import pytest

from repro.acpi.platform import build_platform
from repro.acpi.states import SleepState
from repro.core.database import BufferDatabase
from repro.core.protocol import BufferDescriptor, BufferKind
from repro.errors import BufferError_, FencingError, RdmaError
from repro.memory.buffers import BufferLease, RemotePageStore
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import RpcClient, RpcServer
from repro.sanitize import MemorySanitizer
from repro.sanitize.memsan import (DOUBLE_FREE, EPOCH_REGRESSION,
                                   LOST_BUFFER_ACCESS, POWER_DOMAIN,
                                   USE_AFTER_RECLAIM)
from repro.sanitize.pytest_plugin import get_session_sanitizer
from repro.units import GiB, PAGE_SIZE


@pytest.fixture
def san(request):
    """The active sanitizer: the session one under ``--memsan``, else local.

    Stacking a second install over the session sanitizer would double-patch
    the hook points and double-report every finding, so the session instance
    is reused when present; its findings are drained at teardown so the
    plugin's autouse check does not fail the very tests that inject defects.
    """
    session = get_session_sanitizer(request.config)
    if session is not None:
        yield session
        session.drain_findings()
    else:
        with MemorySanitizer() as sanitizer:
            yield sanitizer


def _make_store(platform=None):
    """A user node with one 8-page lease served by ``server``."""
    fabric = Fabric()
    user = fabric.add_node("user")
    server = fabric.add_node("server", platform=platform)
    store = RemotePageStore(user)
    mr = server.register_mr(8 * PAGE_SIZE)
    store.add_lease(BufferLease(buffer_id=100, host="server", rkey=mr.rkey,
                                size_bytes=8 * PAGE_SIZE, zombie=True))
    return fabric, store, mr


def _kinds(sanitizer):
    return [f.kind for f in sanitizer.drain_findings()]


class TestCleanRuns:
    def test_normal_cycle_produces_no_findings(self, san):
        _, store, _ = _make_store()
        key, _ = store.store(b"payload")
        store.load(key)
        store.free(key)
        store.remove_lease(100)
        assert _kinds(san) == []

    def test_regranted_buffer_is_legitimate_again(self, san):
        _, store, mr = _make_store()
        lease = store.leases()[0]
        store.remove_lease(100)
        store.add_lease(lease)  # controller re-granted the same buffer
        key, _ = store.store(b"fresh")
        store.load(key)
        assert _kinds(san) == []


class TestUseAfterReclaim:
    def test_verb_after_revocation_is_flagged(self, san):
        fabric, store, mr = _make_store()
        store.store(b"doomed")
        store.remove_lease(100)
        # The serving host never deregistered the MR (the injected defect),
        # so a read through a fresh QP succeeds silently.
        qp = fabric.node("user").connect_qp("server")
        fabric.node("user").rdma_read_timed(qp, mr.rkey, 0, PAGE_SIZE)
        assert USE_AFTER_RECLAIM in _kinds(san)

    def test_deregistered_mr_is_defended_not_flagged(self, san):
        fabric, store, mr = _make_store()
        store.remove_lease(100)
        fabric.node("server").deregister_mr(mr.rkey)  # the correct cleanup
        qp = fabric.node("user").connect_qp("server")
        with pytest.raises(RdmaError):
            fabric.node("user").rdma_read_timed(qp, mr.rkey, 0, PAGE_SIZE)
        assert _kinds(san) == []

    def test_drop_host_marks_all_of_its_leases(self, san):
        fabric, store, mr = _make_store()
        store.store(b"x")
        store.drop_host("server")
        qp = fabric.node("user").connect_qp("server")
        fabric.node("user").rdma_write_timed(qp, mr.rkey, 0, b"stale write")
        assert USE_AFTER_RECLAIM in _kinds(san)


class TestDoubleFree:
    def test_second_free_is_flagged(self, san):
        _, store, _ = _make_store()
        key, _ = store.store(b"once")
        store.free(key)
        with pytest.raises(BufferError_):
            store.free(key)
        assert DOUBLE_FREE in _kinds(san)

    def test_freeing_a_never_valid_key_is_not_a_double_free(self, san):
        _, store, _ = _make_store()
        with pytest.raises(BufferError_):
            store.free(999)
        assert _kinds(san) == []


class TestLostBufferAccess:
    def test_read_of_lost_buffer_is_flagged(self, san):
        _, store, mr = _make_store()
        key, _ = store.store(b"orphaned")
        db = BufferDatabase()
        db.add(BufferDescriptor(buffer_id=100, host="server", offset=0,
                                size_bytes=8 * PAGE_SIZE,
                                kind=BufferKind.ZOMBIE, rkey=mr.rkey))
        db.set_kind(100, BufferKind.LOST)  # recovery declared the host dead
        # The user keeps reading through its still-open lease: silent.
        store.load(key)
        assert LOST_BUFFER_ACCESS in _kinds(san)

    def test_healed_buffer_is_accessible_again(self, san):
        _, store, mr = _make_store()
        key, _ = store.store(b"back")
        db = BufferDatabase()
        db.add(BufferDescriptor(buffer_id=100, host="server", offset=0,
                                size_bytes=8 * PAGE_SIZE,
                                kind=BufferKind.ZOMBIE, rkey=mr.rkey))
        db.set_kind(100, BufferKind.LOST)
        db.set_kind(100, BufferKind.ZOMBIE)  # false alarm: host healed
        store.load(key)
        assert _kinds(san) == []


class TestPowerDomain:
    def test_stale_remote_ok_cache_is_flagged(self, san):
        platform = build_platform("server", memory_bytes=1 * GiB)
        _, store, _ = _make_store(platform=platform)
        key, _ = store.store(b"resident")
        platform.suspend(SleepState.S3)  # DRAM in self-refresh: no DMA
        platform.remote_ok = True        # injected defect: stale cache
        store.load(key)                  # gate reads the stale flag: silent
        assert POWER_DOMAIN in _kinds(san)

    def test_honest_cache_is_defended_not_flagged(self, san):
        platform = build_platform("server", memory_bytes=1 * GiB)
        _, store, _ = _make_store(platform=platform)
        key, _ = store.store(b"resident")
        platform.suspend(SleepState.S3)
        with pytest.raises(RdmaError):
            store.load(key)
        assert _kinds(san) == []

    def test_zombie_host_is_a_legal_target(self, san):
        platform = build_platform("server", memory_bytes=1 * GiB)
        _, store, _ = _make_store(platform=platform)
        key, _ = store.store(b"zombie-served")
        platform.go_zombie()
        store.load(key)  # the whole point of Sz
        assert _kinds(san) == []


class TestEpochRegression:
    def _channel(self):
        fabric = Fabric()
        server = RpcServer(fabric.add_node("srv"))
        client = RpcClient(fabric.add_node("cli"), server)
        return server, client

    def test_unfenced_stale_epoch_is_flagged(self, san):
        server, client = self._channel()
        # Injected defect: a handler that takes the epoch stamp but never
        # fences (forgot the _fence(epoch) call).
        server.register("GS_reclaim", lambda nb, epoch=None: nb)
        client.call("GS_reclaim", 2, epoch=5)
        client.call("GS_reclaim", 1, epoch=3)  # deposed controller: silent
        assert EPOCH_REGRESSION in _kinds(san)

    def test_fenced_call_is_defended_not_flagged(self, san):
        server, client = self._channel()
        watermark = {"epoch": 0}

        def fenced(nb, epoch=None):
            if epoch is not None and epoch < watermark["epoch"]:
                raise FencingError(f"stale epoch {epoch}")
            watermark["epoch"] = epoch or watermark["epoch"]
            return nb

        server.register("GS_reclaim", fenced)
        client.call("GS_reclaim", 2, epoch=5)
        with pytest.raises(FencingError):
            client.call("GS_reclaim", 1, epoch=3)
        assert _kinds(san) == []


class TestLeakReport:
    def test_live_store_with_leases_is_reported(self, san):
        gc.collect()  # drop stores earlier tests left uncollected
        _, store, _ = _make_store()
        leaks = san.leak_report()
        assert any(leak.node == "user" and 100 in leak.lease_ids
                   for leak in leaks)
        store.remove_lease(100)
        assert all(leak.node != "user" for leak in san.leak_report())

    def test_dead_store_is_not_reported(self, san):
        _, store, _ = _make_store()
        del store
        gc.collect()
        assert all(leak.node != "user" for leak in san.leak_report())
