"""Trace statistics validation."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.google import generate_trace
from repro.traces.schema import Task, TraceConfig
from repro.traces.stats import compute_stats, summarize
from repro.traces.transform import double_memory_demand
from repro.units import HOUR


class TestComputeStats:
    def test_single_task(self):
        task = Task(1, 0, 0.0, 2 * HOUR, 0.4, 0.6, 0.2, 0.3)
        stats = compute_stats([task])
        assert stats.tasks == 1 and stats.jobs == 1
        assert stats.horizon_s == 2 * HOUR
        assert stats.mean_cpu_booked == pytest.approx(0.4)
        assert stats.mem_to_cpu_ratio == pytest.approx(1.5)
        assert stats.duration_p50_s == 2 * HOUR

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceFormatError):
            compute_stats([])

    def test_generated_trace_matches_config(self):
        config = TraceConfig(n_servers=200, duration_days=3.0,
                             cpu_load=0.3, mem_to_cpu=1.5,
                             idle_fraction=0.12, seed=3)
        stats = compute_stats(generate_trace(config))
        assert stats.mean_cpu_booked == pytest.approx(
            config.cpu_load * config.n_servers, rel=0.25)
        assert stats.mem_to_cpu_ratio == pytest.approx(1.5, rel=0.15)
        assert stats.idle_task_fraction == pytest.approx(0.12, abs=0.05)
        assert stats.usage_to_booking_ratio < 0.8  # bookings exceed usage

    def test_diurnal_swing_visible(self):
        config = TraceConfig(n_servers=200, duration_days=3.0,
                             diurnal_amplitude=0.5, seed=3)
        flat = TraceConfig(n_servers=200, duration_days=3.0,
                           diurnal_amplitude=0.0, seed=3)
        swing = compute_stats(generate_trace(config)).diurnal_peak_to_trough
        baseline = compute_stats(generate_trace(flat)).diurnal_peak_to_trough
        assert swing > baseline

    def test_modified_trace_ratio_is_two(self):
        tasks = generate_trace(TraceConfig(n_servers=100,
                                           duration_days=2.0, seed=9))
        stats = compute_stats(double_memory_demand(tasks))
        assert stats.mem_to_cpu_ratio == pytest.approx(2.0, rel=0.05)

    def test_summary_renders(self):
        tasks = generate_trace(TraceConfig(n_servers=50, duration_days=1.0))
        text = summarize(tasks)
        assert "mem:cpu" in text and "diurnal" in text
