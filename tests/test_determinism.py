"""The determinism verifier: permuted same-time orderings vs the baseline."""

from repro.sim.determinism import (Divergence, ShuffledEngine,
                                   _first_divergence, main,
                                   rack_fault_scenario, verify_determinism)
from repro.sim.engine import Engine
from repro.sim.rng import DeterministicRng


def _run_order(engine, labels, at=1.0):
    out = []
    for label in labels:
        engine.schedule_at(at, lambda label=label: out.append(label))
    engine.run()
    return out


class TestShuffledEngine:
    def test_time_ordering_is_preserved(self):
        engine = ShuffledEngine(rng=DeterministicRng(1))
        out = []
        for t in (3.0, 1.0, 2.0):
            engine.schedule_at(t, lambda t=t: out.append(t))
        engine.run()
        assert out == [1.0, 2.0, 3.0]

    def test_same_seed_replays_the_same_permutation(self):
        labels = list("abcdefgh")
        first = _run_order(ShuffledEngine(rng=DeterministicRng(7)), labels)
        second = _run_order(ShuffledEngine(rng=DeterministicRng(7)), labels)
        assert first == second

    def test_ties_actually_get_permuted(self):
        labels = list("abcdefgh")
        fifo = _run_order(Engine(), labels)
        assert fifo == labels  # the stock engine is FIFO on ties
        shuffled = [_run_order(ShuffledEngine(rng=DeterministicRng(s)), labels)
                    for s in range(6)]
        assert any(order != labels for order in shuffled)


class TestVerify:
    def test_order_independent_scenario_passes(self):
        def scenario(engine):
            out = []
            for t in (5.0, 1.0, 3.0):
                engine.schedule_at(t, lambda t=t: out.append(t))
            engine.run()
            return [f"{t:.1f}" for t in out]

        report = verify_determinism(scenario, runs=6)
        assert report.ok
        assert report.trace_length == 3
        assert "deterministic" in report.describe()

    def test_hidden_ordering_dependency_is_flagged(self):
        def racy(engine):
            # Two events at the same instant whose relative order leaks
            # into the trace: exactly the bug class the verifier hunts.
            out = []
            engine.schedule_at(1.0, lambda: out.append("a"))
            engine.schedule_at(1.0, lambda: out.append("b"))
            engine.run()
            return out

        report = verify_determinism(racy, runs=8)
        assert not report.ok
        first = report.divergences[0]
        assert first.index == 0
        assert {first.baseline, first.variant} == {"a", "b"}
        assert "ordering dependency" in report.describe()

    def test_divergence_pinpoints_first_difference(self):
        div = _first_divergence(1, ["a", "b", "c"], ["a", "x", "c"])
        assert div == Divergence(1, 1, "b", "x")

    def test_length_mismatch_is_a_divergence(self):
        div = _first_divergence(2, ["a", "b"], ["a"])
        assert div == Divergence(2, 1, "b", None)
        assert _first_divergence(3, ["a"], ["a"]) is None


class TestBuiltinScenario:
    def test_rack_fault_scenario_is_deterministic(self):
        report = verify_determinism(rack_fault_scenario, runs=3)
        assert report.ok, report.describe()
        assert report.trace_length > 0

    def test_cli_exit_zero(self):
        assert main(["--runs", "2"]) == 0
