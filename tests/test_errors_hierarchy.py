"""The exception hierarchy: catchability contracts callers rely on."""

import inspect

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name, obj in vars(errors).items():
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_rdma_family(self):
        assert issubclass(errors.QueuePairError, errors.RdmaError)
        assert issubclass(errors.MemoryRegionError, errors.RdmaError)
        assert issubclass(errors.RpcError, errors.RdmaError)
        assert issubclass(errors.RpcTimeoutError, errors.RpcError)

    def test_memory_family(self):
        for cls in (errors.OutOfFramesError, errors.PageTableError,
                    errors.BufferError_, errors.SwapError):
            assert issubclass(cls, errors.MemoryError_)

    def test_controller_family(self):
        assert issubclass(errors.FailoverError, errors.ControllerError)

    def test_hypervisor_family(self):
        assert issubclass(errors.VmStateError, errors.HypervisorError)
        assert issubclass(errors.MigrationError, errors.HypervisorError)

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)

    def test_catching_the_base_catches_subsystem_failures(self):
        """One except clause is enough at library boundaries."""
        from repro.memory.frames import FrameAllocator
        allocator = FrameAllocator(0)
        with pytest.raises(errors.ReproError):
            allocator.alloc()
        from repro.rdma.fabric import Fabric
        with pytest.raises(errors.ReproError):
            Fabric().node("ghost")
