"""The rack energy monitor: metered server states over engine time."""

import pytest

from repro.acpi.states import SleepState
from repro.core.rack import Rack
from repro.energy.model import estimate_sz_fraction, server_power_watts
from repro.energy.profiles import HP_PROFILE
from repro.energy.rack_monitor import RackEnergyMonitor
from repro.errors import ConfigurationError
from repro.units import MiB


@pytest.fixture
def rack():
    return Rack(["a", "b"], memory_bytes=128 * MiB, buff_size=8 * MiB)


class TestMonitoring:
    def test_idle_rack_draws_idle_power(self, rack):
        monitor = RackEnergyMonitor(rack, HP_PROFILE, sample_period_s=1.0)
        rack.engine.run(until=100.0)
        expected = server_power_watts(HP_PROFILE, SleepState.S0, 0.0) * 100
        assert monitor.server_joules("a") == pytest.approx(expected, rel=0.02)

    def test_zombie_draws_equation_one_power(self, rack):
        monitor = RackEnergyMonitor(rack, HP_PROFILE, sample_period_s=1.0)
        rack.make_zombie("b")
        rack.engine.run(until=100.0)
        expected = (estimate_sz_fraction(HP_PROFILE)
                    * HP_PROFILE.max_power_watts * 100)
        # One sample period of S0 power before the first post-transition
        # sample is expected quantization error.
        assert monitor.server_joules("b") == pytest.approx(expected, rel=0.05)

    def test_transition_mid_run_is_integrated(self, rack):
        monitor = RackEnergyMonitor(rack, HP_PROFILE, sample_period_s=1.0)
        rack.engine.schedule(50.0, lambda: rack.make_zombie("b"))
        rack.engine.run(until=100.0)
        idle = server_power_watts(HP_PROFILE, SleepState.S0, 0.0)
        sz = server_power_watts(HP_PROFILE, SleepState.SZ)
        expected = idle * 50 + sz * 50
        assert monitor.server_joules("b") == pytest.approx(expected, rel=0.03)

    def test_total_and_report(self, rack):
        monitor = RackEnergyMonitor(rack, HP_PROFILE)
        rack.engine.run(until=10.0)
        report = monitor.report()
        assert set(report) == {"a", "b"}
        assert monitor.total_joules() == pytest.approx(sum(report.values()))
        assert monitor.total_kwh() > 0

    def test_stop_halts_sampling(self, rack):
        monitor = RackEnergyMonitor(rack, HP_PROFILE, sample_period_s=1.0)
        monitor.stop()
        rack.engine.run(until=10.0)
        assert monitor._sampler.ticks == 0

    def test_unknown_server_rejected(self, rack):
        monitor = RackEnergyMonitor(rack, HP_PROFILE)
        with pytest.raises(ConfigurationError):
            monitor.server_joules("ghost")

    def test_invalid_period_rejected(self, rack):
        with pytest.raises(ConfigurationError):
            RackEnergyMonitor(rack, HP_PROFILE, sample_period_s=0.0)

    def test_utilization_hook(self, rack):
        monitor = RackEnergyMonitor(rack, HP_PROFILE,
                                    utilization_fn=lambda server: 1.0)
        rack.engine.run(until=10.0)
        full = server_power_watts(HP_PROFILE, SleepState.S0, 1.0) * 10
        assert monitor.server_joules("a") == pytest.approx(full, rel=0.02)
