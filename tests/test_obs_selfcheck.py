"""The ``python -m repro.obs`` gate: golden scenario, self-check, CLI."""

import pytest

from repro.check.model import RPC_ACTION_VERBS
from repro.obs import Telemetry
from repro.obs.__main__ import main as obs_main
from repro.obs.selfcheck import (FED_VERBS, INTRA_RACK_VERBS,
                                 connected_subtree, run_federation_scenario,
                                 run_golden_scenario, self_check)
from repro.obs.tracing import span_forest_errors


@pytest.fixture(scope="module")
def golden_rack():
    return run_golden_scenario()


@pytest.fixture(scope="module")
def federation():
    return run_federation_scenario()


class TestGoldenScenario:
    def test_all_intra_rack_verbs_complete_a_traced_call(self, golden_rack):
        tel = golden_rack.telemetry
        seen = {labels.get("verb") for labels
                in tel.registry.labels_for("rpc_call_seconds")}
        assert set(INTRA_RACK_VERBS) <= seen
        assert len(RPC_ACTION_VERBS) == 17
        assert len(INTRA_RACK_VERBS) == 15

    def test_span_forest_is_connected(self, golden_rack):
        tracer = golden_rack.telemetry.tracer
        assert span_forest_errors(tracer.finished()) == []
        assert tracer._stack == []

    def test_non_rpc_layers_reach_the_same_hub(self, golden_rack):
        registry = golden_rack.telemetry.registry

        def total(name):
            return sum(registry.value(name, **labels)
                       for labels in registry.labels_for(name))

        assert total("hv_page_faults_total") > 0
        assert total("vm_migrations_total") >= 1
        assert total("recovery_incidents_total") >= 1
        assert total("dc_energy_joules_total") > 0
        assert golden_rack.telemetry.tracer.samples  # energy timeline

    def test_self_check_is_green(self):
        assert self_check() == []


class TestFederationScenario:
    def test_fed_verbs_complete_a_traced_call(self, federation):
        tel = federation.telemetry
        seen = {labels.get("verb") for labels
                in tel.registry.labels_for("rpc_call_seconds")}
        assert set(FED_VERBS) <= seen
        assert len(FED_VERBS) == 2

    def test_cross_rack_borrow_is_one_connected_tree(self, federation):
        tracer = federation.telemetry.tracer
        borrows = tracer.finished("call.FED_borrow")
        assert borrows
        trace = tracer.trace(borrows[0].trace_id)
        assert span_forest_errors(trace) == []
        subtree = connected_subtree(trace, "call.FED_borrow")
        assert any(s.name == "serve.FED_borrow" for s in subtree)

    def test_rack_labelled_metrics_and_energy(self, federation):
        registry = federation.telemetry.registry
        racks = {labels.get("rack")
                 for labels in registry.labels_for("fed_rack_alive")}
        assert racks == {"rack1", "rack2"}
        assert federation.fabric.cross_rack_joules > 0
        assert registry.labels_for("fed_cross_rack_joules_total")


class TestCli:
    def test_self_check_flag_exits_zero(self, capsys):
        assert obs_main(["--self-check"]) == 0
        assert "self-check: ok" in capsys.readouterr().out

    def test_report_and_exports(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        perf = tmp_path / "trace.json"
        assert obs_main(["--prometheus", str(prom),
                         "--perfetto", str(perf), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "ZomTrace run report" in out
        assert "Top 3 slowest spans" in out

        from repro.obs.export import (validate_chrome_trace,
                                      validate_prometheus_text)
        assert validate_prometheus_text(prom.read_text()) == []
        assert validate_chrome_trace(perf.read_text()) == []


class TestQuickstartIntegration:
    def test_quickstart_accepts_a_telemetry_hub(self):
        import importlib.util
        import pathlib
        path = (pathlib.Path(__file__).resolve().parent.parent
                / "examples" / "quickstart.py")
        spec = importlib.util.spec_from_file_location("quickstart", path)
        quickstart = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(quickstart)
        tel = Telemetry(enabled=True)
        rack = quickstart.main(telemetry=tel)
        assert rack.telemetry is tel
        assert tel.registry.labels_for("rpc_call_seconds")
        assert span_forest_errors(tel.tracer.finished()) == []
