"""The controller's buffer database."""

import pytest

from repro.core.database import BufferDatabase
from repro.core.protocol import BufferDescriptor, BufferKind
from repro.errors import BufferError_, ControllerError


def _desc(buffer_id, host="h1", kind=BufferKind.ZOMBIE, user=None):
    return BufferDescriptor(buffer_id=buffer_id, host=host, offset=0,
                            size_bytes=1024, kind=kind, rkey=buffer_id,
                            user=user)


class TestMutations:
    def test_add_and_get(self):
        db = BufferDatabase()
        db.add(_desc(1))
        assert db.get(1).host == "h1"
        assert 1 in db and len(db) == 1

    def test_duplicate_add_rejected(self):
        db = BufferDatabase()
        db.add(_desc(1))
        with pytest.raises(BufferError_):
            db.add(_desc(1))

    def test_assign_unassign(self):
        db = BufferDatabase()
        db.add(_desc(1))
        assert db.assign(1, "user-a").user == "user-a"
        assert db.get(1).allocated
        db.unassign(1)
        assert not db.get(1).allocated

    def test_double_assign_rejected(self):
        db = BufferDatabase()
        db.add(_desc(1))
        db.assign(1, "a")
        with pytest.raises(BufferError_):
            db.assign(1, "b")

    def test_unassign_free_rejected(self):
        db = BufferDatabase()
        db.add(_desc(1))
        with pytest.raises(BufferError_):
            db.unassign(1)

    def test_remove(self):
        db = BufferDatabase()
        db.add(_desc(1))
        assert db.remove(1).buffer_id == 1
        assert 1 not in db
        with pytest.raises(BufferError_):
            db.remove(1)

    def test_set_kind(self):
        db = BufferDatabase()
        db.add(_desc(1, kind=BufferKind.ACTIVE))
        db.set_kind(1, BufferKind.ZOMBIE)
        assert db.get(1).kind is BufferKind.ZOMBIE


class TestQueries:
    def _populated(self):
        db = BufferDatabase()
        db.add(_desc(1, host="h1", kind=BufferKind.ACTIVE))
        db.add(_desc(2, host="h2", kind=BufferKind.ZOMBIE))
        db.add(_desc(3, host="h2", kind=BufferKind.ZOMBIE))
        db.add(_desc(4, host="h3", kind=BufferKind.ACTIVE))
        db.assign(3, "user")
        return db

    def test_free_buffers_zombie_first(self):
        db = self._populated()
        free = db.free_buffers(zombie_first=True)
        assert [b.buffer_id for b in free] == [2, 1, 4]

    def test_free_buffers_plain_order(self):
        db = self._populated()
        assert [b.buffer_id for b in db.free_buffers(zombie_first=False)] \
            == [1, 2, 4]

    def test_by_host_and_user(self):
        db = self._populated()
        assert {b.buffer_id for b in db.by_host("h2")} == {2, 3}
        assert [b.buffer_id for b in db.by_user("user")] == [3]

    def test_allocated_count_by_host(self):
        db = self._populated()
        counts = db.allocated_count_by_host()
        assert counts == {"h1": 0, "h2": 1, "h3": 0}

    def test_byte_accounting(self):
        db = self._populated()
        assert db.total_bytes() == 4 * 1024
        assert db.free_bytes() == 3 * 1024


class TestJournalAndMirroring:
    def test_journal_records_every_mutation(self):
        db = BufferDatabase()
        db.add(_desc(1))
        db.assign(1, "u")
        db.unassign(1)
        db.remove(1)
        ops = [op for op, _ in db.journal]
        assert ops == ["add", "assign", "unassign", "remove"]

    def test_replaying_journal_reproduces_state(self):
        primary = BufferDatabase()
        primary.add(_desc(1))
        primary.add(_desc(2, host="h2"))
        primary.assign(1, "user-a")
        primary.set_kind(2, BufferKind.ZOMBIE)
        primary.remove(2)

        replica = BufferDatabase()
        for op, args in primary.journal:
            replica.apply(op, args)
        assert len(replica) == len(primary)
        assert replica.get(1).user == primary.get(1).user

    def test_unknown_mirror_op_rejected(self):
        with pytest.raises(ControllerError):
            BufferDatabase().apply("frobnicate", ())

    def test_snapshot_round_trip(self):
        db = self._make_db()
        replica = BufferDatabase()
        replica.load_snapshot(db.snapshot())
        assert len(replica) == len(db)
        assert replica.get(1).user == "u"

    @staticmethod
    def _make_db():
        db = BufferDatabase()
        db.add(_desc(1))
        db.assign(1, "u")
        return db
