"""Fixture tests for the three ZomFlow passes and the baseline ratchet.

Each rule gets a clean and a violating fixture tree (built as in-memory
``{path: source}`` dicts), including the two interprocedural shapes the
single-file lint rules cannot see: a two-hop taint chain (ZL009) and a
read-modify-write straddling an RPC yield (ZL010).
"""

import json
from pathlib import Path

import pytest

from repro.flow import (analyze_sources, build_graph, check_atomicity,
                        check_contracts, check_purity,
                        diff_against_baseline, load_baseline,
                        write_baseline)
from repro.flow.__main__ import main as flow_main


def _graph(sources):
    return build_graph({Path(p): s for p, s in sources.items()})


# -- ZL009: transitive sim-purity taint ---------------------------------------

SERVICE_TWO_HOP = {
    "fx/svc.py": (
        "import time\n"
        "class Service:\n"
        "    def __init__(self, rpc):\n"
        "        rpc.register('verb_x', self.handle)\n"
        "    def handle(self):\n"
        "        return self.helper()\n"
        "    def helper(self):\n"
        "        return stamp()\n"
        "def stamp():\n"
        "    return time.time()\n"
    ),
}


class TestPurity:
    def test_two_hop_taint_chain_reaches_handler(self):
        findings = check_purity(_graph(SERVICE_TWO_HOP))
        assert [f.rule for f in findings] == ["ZL009"]
        finding = findings[0]
        assert finding.line == 10
        assert "Service.handle -> Service.helper -> stamp" in finding.message
        assert "wall-clock" in finding.message

    def test_source_outside_sim_context_is_clean(self):
        sources = dict(SERVICE_TWO_HOP)
        # Same impurity, but nothing registers the handler: not sim context.
        sources["fx/svc.py"] = sources["fx/svc.py"].replace(
            "        rpc.register('verb_x', self.handle)\n",
            "        pass\n")
        assert check_purity(_graph(sources)) == []

    def test_alias_laundered_wall_clock_is_caught(self):
        sources = {
            "fx/svc.py": (
                "from time import monotonic as _mono\n"
                "class Service:\n"
                "    def __init__(self, rpc):\n"
                "        rpc.register('verb_x', self.handle)\n"
                "    def handle(self):\n"
                "        return _mono()\n"
            ),
        }
        findings = check_purity(_graph(sources))
        assert [f.rule for f in findings] == ["ZL009"]
        assert "time.monotonic" in findings[0].message

    def test_global_random_in_scheduled_callback(self):
        sources = {
            "fx/svc.py": (
                "import random\n"
                "class Sampler:\n"
                "    def __init__(self, engine):\n"
                "        engine.schedule(1.0, self.tick)\n"
                "    def tick(self):\n"
                "        return random.random()\n"
            ),
        }
        findings = check_purity(_graph(sources))
        assert [f.rule for f in findings] == ["ZL009"]
        assert "global-random" in findings[0].message

    def test_unordered_set_iteration_in_sim_context(self):
        sources = {
            "fx/svc.py": (
                "class Service:\n"
                "    def __init__(self, rpc):\n"
                "        self.hosts = set()\n"
                "        rpc.register('verb_x', self.handle)\n"
                "    def handle(self):\n"
                "        return [h for h in self.hosts]\n"
            ),
        }
        findings = check_purity(_graph(sources))
        assert [f.rule for f in findings] == ["ZL009"]
        assert "unordered" in findings[0].message

    def test_sorted_set_iteration_is_clean(self):
        sources = {
            "fx/svc.py": (
                "class Service:\n"
                "    def __init__(self, rpc):\n"
                "        self.hosts = set()\n"
                "        rpc.register('verb_x', self.handle)\n"
                "    def handle(self):\n"
                "        return [h for h in sorted(self.hosts)]\n"
            ),
        }
        assert check_purity(_graph(sources)) == []

    def test_seeded_rng_construction_is_clean(self):
        sources = {
            "fx/svc.py": (
                "import random\n"
                "class Service:\n"
                "    def __init__(self, rpc):\n"
                "        rpc.register('verb_x', self.handle)\n"
                "    def handle(self):\n"
                "        return random.Random(7).random()\n"
            ),
        }
        assert check_purity(_graph(sources)) == []


# -- ZL010: yield-point atomicity ---------------------------------------------

def _controller_fixture(body):
    return {
        "fx/core/controller.py": (
            "class Controller:\n"
            "    def __init__(self, client):\n"
            "        self.client = client\n"
            "        self.db = {}\n"
            "        self.fenced = False\n"
            + body
        ),
    }


class TestAtomicity:
    def test_straddling_read_modify_write_fires(self):
        sources = _controller_fixture(
            "    def reclaim(self, host):\n"
            "        victims = self.db.get(host)\n"
            "        self.client.call('US_reclaim', victims)\n"
            "        self.db.pop(host)\n"
        )
        findings = check_atomicity(_graph(sources))
        assert [f.rule for f in findings] == ["ZL010"]
        assert "leases" in findings[0].message
        assert findings[0].fingerprint.endswith("Controller.reclaim:leases")

    def test_revalidated_write_is_clean(self):
        sources = _controller_fixture(
            "    def reclaim(self, host):\n"
            "        victims = self.db.get(host)\n"
            "        self.client.call('US_reclaim', victims)\n"
            "        if host not in self.db:\n"
            "            return\n"
            "        self.db.pop(host)\n"
        )
        assert check_atomicity(_graph(sources)) == []

    def test_fencing_check_after_yield_is_clean(self):
        sources = _controller_fixture(
            "    def reclaim(self, host):\n"
            "        victims = self.db.get(host)\n"
            "        self.client.call('US_reclaim', victims)\n"
            "        if self.fenced:\n"
            "            raise RuntimeError('deposed')\n"
            "        self.db.pop(host)\n"
        )
        assert check_atomicity(_graph(sources)) == []

    def test_write_without_prior_read_is_clean(self):
        sources = _controller_fixture(
            "    def record(self, host, ids):\n"
            "        self.client.call('US_reclaim', ids)\n"
            "        self.db.pop(host)\n"
        )
        assert check_atomicity(_graph(sources)) == []

    def test_yield_through_helper_rpc_is_seen(self):
        # The RPC is two frames down; the yield must still be detected.
        sources = _controller_fixture(
            "    def reclaim(self, host):\n"
            "        victims = self.db.get(host)\n"
            "        self.notify(victims)\n"
            "        self.db.pop(host)\n"
            "    def notify(self, victims):\n"
            "        self.forward(victims)\n"
            "    def forward(self, victims):\n"
            "        self.client.call('US_reclaim', victims)\n"
        )
        findings = check_atomicity(_graph(sources))
        assert [f.fingerprint.split(":")[-2:] for f in findings] == [
            ["Controller.reclaim", "leases"]]

    def test_out_of_scope_module_is_ignored(self):
        sources = {
            "fx/cloud/pack.py": (
                "class Packer:\n"
                "    def __init__(self, client):\n"
                "        self.client = client\n"
                "        self.db = {}\n"
                "    def go(self, host):\n"
                "        v = self.db.get(host)\n"
                "        self.client.call('x', v)\n"
                "        self.db.pop(host)\n"
            ),
        }
        assert check_atomicity(_graph(sources)) == []


# -- ZL011: error-contract flow -----------------------------------------------

ERRORS_FIXTURE = (
    "class ReproError(Exception):\n    pass\n"
    "class RdmaError(ReproError):\n    pass\n"
    "class RpcError(RdmaError):\n    pass\n"
    "class RpcTimeoutError(RpcError):\n    pass\n"
    "class FencingError(ReproError):\n    pass\n"
    "class DeclaredError(ReproError):\n    pass\n"
    "class UndeclaredError(ReproError):\n    pass\n"
)


def _contract_fixture(raise_stmt, declared=("DeclaredError",)):
    decl = ", ".join(f"'{d}'" for d in declared)
    trailing = "," if len(declared) == 1 else ""
    return {
        "fx/errors.py": ERRORS_FIXTURE,
        "fx/core/protocol.py": (
            "class Method:\n"
            "    DO_THING = 'do_thing'\n"
            f"VERB_ERRORS = {{'do_thing': ({decl}{trailing})}}\n"
        ),
        "fx/core/server.py": (
            "from fx.errors import DeclaredError, UndeclaredError\n"
            "class Server:\n"
            "    def __init__(self, rpc):\n"
            "        rpc.register('do_thing', self.handle)\n"
            "    def handle(self):\n"
            "        return self.helper()\n"
            "    def helper(self):\n"
            f"        {raise_stmt}\n"
        ),
    }


class TestContracts:
    def test_undeclared_escape_fires_with_chain(self):
        findings = check_contracts(
            _graph(_contract_fixture("raise UndeclaredError('boom')")),
            {Path(p): s for p, s in
             _contract_fixture("raise UndeclaredError('boom')").items()})
        assert [f.rule for f in findings] == ["ZL011"]
        finding = findings[0]
        assert finding.fingerprint == "ZL011:do_thing:UndeclaredError"
        assert "Server.handle -> Server.helper" in finding.message
        assert finding.path.endswith("server.py")

    def test_declared_escape_is_clean(self):
        sources = _contract_fixture("raise DeclaredError('boom')")
        graph = _graph(sources)
        assert check_contracts(
            graph, {Path(p): s for p, s in sources.items()}) == []

    def test_declared_base_class_covers_subclass(self):
        sources = _contract_fixture("raise UndeclaredError('boom')",
                                    declared=("ReproError",))
        graph = _graph(sources)
        assert check_contracts(
            graph, {Path(p): s for p, s in sources.items()}) == []

    def test_retryable_transport_family_is_implicitly_allowed(self):
        sources = _contract_fixture("raise RpcTimeoutError('slow')",
                                    declared=())
        graph = _graph(sources)
        assert check_contracts(
            graph, {Path(p): s for p, s in sources.items()}) == []

    def test_caught_exception_does_not_escape(self):
        sources = _contract_fixture("raise UndeclaredError('boom')")
        sources["fx/core/server.py"] = (
            "from fx.errors import UndeclaredError\n"
            "class Server:\n"
            "    def __init__(self, rpc):\n"
            "        rpc.register('do_thing', self.handle)\n"
            "    def handle(self):\n"
            "        try:\n"
            "            return self.helper()\n"
            "        except UndeclaredError:\n"
            "            return None\n"
            "    def helper(self):\n"
            "        raise UndeclaredError('boom')\n"
        )
        graph = _graph(sources)
        assert check_contracts(
            graph, {Path(p): s for p, s in sources.items()}) == []

    def test_catching_base_class_subtracts_subclass(self):
        sources = _contract_fixture("raise UndeclaredError('boom')")
        sources["fx/core/server.py"] = (
            "from fx.errors import ReproError, UndeclaredError\n"
            "class Server:\n"
            "    def __init__(self, rpc):\n"
            "        rpc.register('do_thing', self.handle)\n"
            "    def handle(self):\n"
            "        try:\n"
            "            return self.helper()\n"
            "        except ReproError:\n"
            "            return None\n"
            "    def helper(self):\n"
            "        raise UndeclaredError('boom')\n"
        )
        graph = _graph(sources)
        assert check_contracts(
            graph, {Path(p): s for p, s in sources.items()}) == []

    def test_missing_contract_literal_is_one_finding(self):
        sources = _contract_fixture("raise DeclaredError('boom')")
        sources["fx/core/protocol.py"] = (
            "class Method:\n    DO_THING = 'do_thing'\n")
        graph = _graph(sources)
        findings = check_contracts(
            graph, {Path(p): s for p, s in sources.items()})
        assert [f.fingerprint for f in findings] == ["ZL011:missing-contract"]


# -- suppressions, baseline, CLI ----------------------------------------------

class TestSuppressionAndBaseline:
    def test_line_scoped_suppression_silences_flow_rule(self):
        sources = {Path(p): s for p, s in SERVICE_TWO_HOP.items()}
        key = Path("fx/svc.py")
        sources[key] = sources[key].replace(
            "    return time.time()",
            "    return time.time()  # zl: ignore[ZL009] boot stamp only")
        assert analyze_sources(sources) == []

    def test_baseline_ratchet_roundtrip(self, tmp_path):
        sources = {Path(p): s for p, s in SERVICE_TWO_HOP.items()}
        findings = analyze_sources(sources)
        assert findings
        baseline_path = tmp_path / "flow_baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        new, baselined, burned = diff_against_baseline(findings, baseline)
        assert new == [] and len(baselined) == len(findings) and burned == []
        # A fixed finding shows up as burn-down debt.
        new, baselined, burned = diff_against_baseline([], baseline)
        assert burned == sorted(baseline)
        # Baseline files are deterministic JSON with stable keys.
        data = json.loads(baseline_path.read_text())
        assert data["version"] == 1
        assert set(data["findings"]) == {f.fingerprint for f in findings}

    def test_cli_exit_codes(self, tmp_path):
        tree = tmp_path / "fx"
        (tree / "core").mkdir(parents=True)
        (tree / "svc.py").write_text(SERVICE_TWO_HOP["fx/svc.py"])
        baseline = tmp_path / "flow_baseline.json"
        # New finding, no baseline: exit 1.
        assert flow_main([str(tree), "--baseline", str(baseline)]) == 1
        # Regen writes the baseline and exits 0; the next run is clean.
        assert flow_main([str(tree), "--baseline", str(baseline),
                          "--regen"]) == 0
        assert flow_main([str(tree), "--baseline", str(baseline)]) == 0
        # --no-baseline ignores the ratchet again.
        assert flow_main([str(tree), "--baseline", str(baseline),
                          "--no-baseline"]) == 1
        # Usage errors exit 2 (argparse convention).
        with pytest.raises(SystemExit) as excinfo:
            flow_main([str(tree), "--rule", "ZL999"])
        assert excinfo.value.code == 2

    def test_cli_stats_lists_every_rule(self, tmp_path, capsys):
        tree = tmp_path / "fx"
        tree.mkdir()
        (tree / "svc.py").write_text(SERVICE_TWO_HOP["fx/svc.py"])
        baseline = tmp_path / "flow_baseline.json"
        flow_main([str(tree), "--baseline", str(baseline), "--stats"])
        out = capsys.readouterr().out
        for rule in ("ZL009", "ZL010", "ZL011"):
            assert rule in out
