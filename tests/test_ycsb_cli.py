"""YCSB workload models and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.workloads.ycsb import (YCSB_WORKLOADS, YcsbWorkload, workload_a,
                                  workload_c, workload_d, workload_e,
                                  workload_f)


class TestYcsbWorkloads:
    def test_all_six_defined(self):
        assert sorted(YCSB_WORKLOADS) == list("ABCDEF")

    def test_streams_deterministic(self):
        w = workload_a(total_pages=128)
        assert list(w.stream()) == list(w.stream())

    def test_pages_in_range(self):
        for factory in YCSB_WORKLOADS.values():
            w = factory(total_pages=64)
            for ppn, _ in w.stream():
                assert 0 <= ppn < 64

    def test_workload_c_is_read_only(self):
        w = workload_c(total_pages=128)
        assert all(not write for _, write in w.stream())

    def test_workload_a_mixes_writes(self):
        w = workload_a(total_pages=128)
        writes = sum(1 for _, wr in w.stream() if wr)
        total = w.op_count
        assert 0.35 < writes / total < 0.65

    def test_workload_f_touches_twice(self):
        w = workload_f(total_pages=128)
        accesses = list(w.stream())
        # RMW: every op yields the page twice, second time as a write.
        pairs = list(zip(accesses[::2], accesses[1::2]))
        same_page = sum(1 for (p1, _), (p2, w2) in pairs
                        if p1 == p2 and w2)
        assert same_page > len(pairs) * 0.9

    def test_workload_e_has_scan_runs(self):
        w = workload_e(total_pages=256)
        accesses = [ppn for ppn, _ in w.stream()]
        consecutive = sum(1 for a, b in zip(accesses, accesses[1:])
                          if b == (a + 1) % 256)
        assert consecutive > len(accesses) * 0.5

    def test_workload_d_prefers_latest(self):
        w = workload_d(total_pages=256)
        accesses = [ppn for ppn, _ in w.stream()]
        newest_half = sum(1 for p in accesses if p >= 64)
        assert newest_half > len(accesses) * 0.5

    def test_zipf_skew(self):
        w = workload_c(total_pages=1000)
        counts = {}
        for ppn, _ in w.stream():
            counts[ppn] = counts.get(ppn, 0) + 1
        top = sum(counts.get(p, 0) for p in range(50))
        assert top > w.op_count * 0.3  # heavy head, YCSB zipfian

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            YcsbWorkload("bad", 0, read_ratio=0.5)
        with pytest.raises(ConfigurationError):
            YcsbWorkload("bad", 10, read_ratio=1.5)


class TestCli:
    def test_parser_covers_subcommands(self):
        parser = build_parser()
        for argv in (["demo"], ["experiment", "fig4"],
                     ["trace", "x.csv"], ["energy"], ["ycsb", "A"]):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_demo_runs(self, capsys):
        assert main(["demo", "--memory-mib", "64", "--vm-mib", "16"]) == 0
        out = capsys.readouterr().out
        assert "Sz" in out and "faults" in out

    def test_experiment_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "12.67" in out and "11.15" in out

    def test_experiment_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "Emax" in capsys.readouterr().out

    def test_trace_generation(self, tmp_path, capsys):
        path = str(tmp_path / "trace.csv")
        assert main(["trace", path, "--servers", "20",
                     "--days", "0.5"]) == 0
        from repro.traces.google import trace_from_csv
        assert len(trace_from_csv(path)) > 0

    def test_modified_trace_flag(self, tmp_path):
        import math
        base = str(tmp_path / "base.csv")
        mod = str(tmp_path / "mod.csv")
        main(["trace", base, "--servers", "20", "--days", "0.5"])
        main(["trace", mod, "--servers", "20", "--days", "0.5",
              "--modified"])
        from repro.traces.google import trace_from_csv
        for task in trace_from_csv(mod):
            if task.cpu_request * 2 <= 0.95:
                assert math.isclose(task.mem_request,
                                    task.cpu_request * 2, abs_tol=1e-5)

    def test_ycsb_sweep(self, capsys):
        assert main(["ycsb", "c", "--pages", "256"]) == 0
        out = capsys.readouterr().out
        assert "YCSB-C" in out and "80% local" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])
