"""Chaos harness: scripted + randomized fault schedules against a live rack.

The invariants under test are the paper's robustness claims: every remote
write has a local-storage mirror (footnote 3), so serving-host crashes must
never lose data; striping (§4.3) bounds the per-failure blast radius; and
the rack reconverges — lost hosts are detected, their buffers invalidated
rack-wide, and healed hosts resynced — without operator help.
"""

import pytest

from repro.core.rack import Rack
from repro.core.recovery import (CLEAR_MESSAGE_FAULTS, CRASH, HEAL,
                                 MESSAGE_FAULTS, PARTITION, FaultAction,
                                 FaultSchedule)
from repro.errors import ConfigurationError, RdmaError, RpcError
from repro.rdma.fabric import DUPLICATE, LinkFaults
from repro.hypervisor.vm import VmSpec
from repro.sim.rng import DeterministicRng
from repro.units import MiB

ZOMBIES = ["z1", "z2", "z3"]


def _chaos_rack(stripe=True, rng_seed=0):
    rack = Rack(["user"] + ZOMBIES, memory_bytes=128 * MiB,
                buff_size=4 * MiB, stripe=stripe, rng_seed=rng_seed)
    for name in ZOMBIES:
        rack.make_zombie(name)
    hv = rack.server("user").hypervisor
    hv.content_mode = True
    vm = rack.create_vm("user", VmSpec("cvm", 32 * MiB), local_fraction=0.25)
    store = hv.store_for("cvm")
    store.transfer_content = True
    return rack, hv, vm


def _pattern(ppn):
    return (b"chaos-%06d-" % ppn) * 8


def _fill(hv, vm):
    for ppn in range(vm.spec.total_pages):
        hv.write_page(vm, ppn, _pattern(ppn))


def _verify_all_pages(hv, vm):
    """Content check: a corrupted remote fill raises HypervisorError."""
    for ppn in range(vm.spec.total_pages):
        assert hv.read_page(vm, ppn)[:12] == _pattern(ppn)[:12], ppn


class TestFaultSchedule:
    def test_actions_validated(self):
        with pytest.raises(ConfigurationError):
            FaultAction(1.0, "meteor", "z1")
        with pytest.raises(ConfigurationError):
            FaultAction(1.0, CRASH)  # needs a host
        with pytest.raises(ConfigurationError):
            FaultAction(-1.0, CRASH, "z1")

    def test_scripted_schedule_fires_in_order(self):
        rack, hv, vm = _chaos_rack()
        schedule = FaultSchedule([
            FaultAction(5.0, PARTITION, "z1"),
            FaultAction(12.0, CRASH, "z2"),
            FaultAction(20.0, HEAL, "z1"),
            FaultAction(22.0, HEAL, "z2"),
        ])
        schedule.install(rack)
        rack.engine.run(until=30.0)
        assert [a.kind for a in schedule.applied] == [PARTITION, CRASH,
                                                      HEAL, HEAL]
        assert rack.fabric.is_reachable("z1")
        assert rack.fabric.is_reachable("z2")

    def test_message_fault_actions_validated(self):
        with pytest.raises(ConfigurationError):
            FaultAction(1.0, MESSAGE_FAULTS, "z1")  # needs a plan
        with pytest.raises(ConfigurationError):
            FaultAction(1.0, MESSAGE_FAULTS,
                        faults=LinkFaults(duplicate=1.0))  # needs a dest
        FaultAction(1.0, CLEAR_MESSAGE_FAULTS)  # host optional: clears all

    def test_scheduled_message_faults_arm_and_disarm_the_injector(self):
        # Arm duplication on every link for a 10 s window; the scenario's
        # writes inside the window cross the adversarial fabric, state
        # stays sane (dedup absorbs re-deliveries), and after the clear
        # action the injector is disarmed again.
        rack, hv, vm = _chaos_rack()
        _fill(hv, vm)
        FaultSchedule([
            FaultAction(5.0, MESSAGE_FAULTS, "*",
                        faults=LinkFaults(duplicate=1.0)),
            FaultAction(15.0, CLEAR_MESSAGE_FAULTS),
        ]).install(rack)
        rack.engine.schedule_at(10.0, lambda: rack.wake("z1"))
        rack.engine.run(until=20.0)
        injector = rack.fabric.message_faults
        assert injector.injected[DUPLICATE] > 0
        assert not injector.active
        assert not rack.server("z1").is_zombie
        _verify_all_pages(hv, vm)

    def test_randomized_schedule_is_replayable_and_healed(self):
        mk = lambda: FaultSchedule.randomized(
            ZOMBIES, DeterministicRng(3), duration_s=30.0, faults=4
        )
        a, b = mk(), mk()
        assert [(x.at_s, x.kind, x.host) for x in a.actions] == \
               [(x.at_s, x.kind, x.host) for x in b.actions]
        outages = [x for x in a.actions if x.kind in (CRASH, PARTITION)]
        heals = [x for x in a.actions if x.kind == HEAL]
        assert len(outages) == len(heals) == 4
        assert max(x.at_s for x in a.actions) <= 0.90 * 30.0


class TestScriptedRecovery:
    def test_partition_detect_invalidate_reconverge(self):
        """'Partition z1 at t=5, heal at t=20' — the issue's smoke case."""
        rack, hv, vm = _chaos_rack()
        _fill(hv, vm)
        rack.start_host_monitoring(probe_period_s=0.5, miss_threshold=2)
        FaultSchedule([
            FaultAction(5.0, PARTITION, "z1"),
            FaultAction(20.0, HEAL, "z1"),
        ]).install(rack)
        rack.engine.run(until=35.0)
        incidents = rack.recovery.stats_for("z1")
        assert len(incidents) == 1
        assert incidents[0].detected_at < 8.0  # a few probe periods
        assert incidents[0].recovered_at is not None
        assert not rack.recovery.lost_hosts
        _verify_all_pages(hv, vm)

    def test_user_report_recovers_before_monitor(self):
        """A verb failure escalates via GS_report_failure immediately."""
        rack, hv, vm = _chaos_rack()
        _fill(hv, vm)
        # Slow monitor: detection would take 50 s without the report.
        rack.start_host_monitoring(probe_period_s=10.0, miss_threshold=5)
        rack.crash_server("z1")
        store = hv.store_for("cvm")
        manager = rack.server("user").manager
        assert manager.report_host_failure("z1") is True
        assert "z1" in rack.recovery.lost_hosts
        assert rack.recovery.reports_received == 1
        assert all(ls.lease.host != "z1" for ls in store._leases.values())
        _verify_all_pages(hv, vm)


class TestRandomizedChaos:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_no_data_loss_and_reconvergence(self, seed):
        duration = 30.0
        rack, hv, vm = _chaos_rack(rng_seed=seed)
        _fill(hv, vm)
        rack.start_host_monitoring(probe_period_s=0.5, miss_threshold=2)
        schedule = FaultSchedule.randomized(
            ZOMBIES, DeterministicRng(seed * 101 + 7), duration_s=duration,
            faults=3
        )
        schedule.install(rack)

        manager = rack.server("user").manager
        store = hv.store_for("cvm")
        touch_rng = DeterministicRng(seed)
        touched = {"accesses": 0, "faults": 0, "reports": 0}

        def batch():
            # A workload slice under fire: reads verify content, writes
            # dirty pages so later evictions re-mirror fresh bytes.
            for _ in range(40):
                ppn = touch_rng.randint(0, vm.spec.total_pages - 1)
                try:
                    if touch_rng.random() < 0.25:
                        hv.write_page(vm, ppn, _pattern(ppn))
                    else:
                        assert hv.read_page(vm, ppn)[:12] == \
                            _pattern(ppn)[:12]
                    touched["accesses"] += 1
                except RdmaError:
                    # The paper's escalation path: a failed one-sided verb
                    # is reported so recovery does not wait for the probe.
                    touched["faults"] += 1
                    for host in sorted({ls.lease.host
                                        for ls in store._leases.values()}):
                        if rack.fabric.is_reachable(host):
                            continue
                        try:
                            if manager.report_host_failure(host):
                                touched["reports"] += 1
                        except RpcError:
                            pass

        for tick in range(1, int(duration)):
            rack.engine.schedule_at(float(tick), batch)
        # Tail: heals land by 0.9*duration; leave room for breaker
        # cooldowns (5 s) and the probes that declare hosts recovered.
        rack.engine.run(until=duration + 15.0)

        assert schedule.applied and len(schedule.applied) == len(schedule)
        assert rack.recovery.incidents, "chaos run never tripped recovery"
        assert touched["accesses"] > 0
        # Reconvergence: nothing still considered lost, every incident
        # closed, and healed awake hosts resynced.
        assert not rack.recovery.lost_hosts
        assert all(s.recovered_at is not None
                   for s in rack.recovery.incidents)
        # Zero lost pages: every page still round-trips its pattern.
        _verify_all_pages(hv, vm)
        # Wake any remaining zombies; pending lender resyncs must drain.
        for name in ZOMBIES:
            if rack.server(name).is_zombie:
                rack.wake(name)
        rack.engine.run(until=duration + 20.0)
        assert not rack.recovery._pending_resync


class TestBlastRadius:
    def _lose_busiest_host(self, stripe):
        rack, hv, vm = _chaos_rack(stripe=stripe)
        _fill(hv, vm)
        per_host = rack.controller.db.allocated_count_by_host()
        busiest = max(sorted(per_host), key=per_host.get)
        stats = rack.recovery.declare_host_lost(busiest)
        _verify_all_pages(hv, vm)  # mirror saves the data either way
        return stats

    def test_striping_bounds_blast_radius(self):
        """§4.3: striping 'minimizes the performance impact caused by a
        remote server failure' — measurable in max_user_buffers_lost."""
        striped = self._lose_busiest_host(stripe=True)
        packed = self._lose_busiest_host(stripe=False)
        assert striped.allocated_buffers_lost > 0
        assert packed.max_user_buffers_lost > striped.max_user_buffers_lost
        # Striping spreads 6 remote buffers over 3 zombies; packing
        # concentrates them on one host, so losing it hurts ~3x more.
        assert packed.max_user_buffers_lost >= \
            2 * striped.max_user_buffers_lost
