"""ZomAudit: grading, analyzers, golden determinism, CLI, regression gate."""

import json

import pytest

from repro.dc import energy_sim
from repro.dc.energy_sim import SlotPlan, plan_zombiestack
from repro.errors import ConfigurationError
from repro.obs.__main__ import main as obs_main
from repro.obs.audit import (CALIBRATIONS, AuditInputs, Calibration,
                             GOLDEN_SEEDS, letter_for_points,
                             letter_for_score, run_audit, run_golden_audit,
                             self_check, to_json, to_prometheus, to_text)
from repro.obs.audit.golden import BASELINE_PATH, baseline_payload
from repro.obs.audit.inputs import parse_series
from repro.obs.audit.render import render, report_dict
from repro.obs.export import validate_prometheus_text


# -- grading ---------------------------------------------------------------

def test_letter_bands():
    assert letter_for_score(1.0) == "A"
    assert letter_for_score(0.85) == "A"
    assert letter_for_score(0.84) == "B"
    assert letter_for_score(0.70) == "B"
    assert letter_for_score(0.55) == "C"
    assert letter_for_score(0.40) == "D"
    assert letter_for_score(0.39) == "F"
    assert letter_for_points(3.4) == "B"
    assert letter_for_points(0.4) == "F"


def test_calibration_interpolates_and_clamps():
    cal = Calibration(((0.0, 1.0), (1.0, 0.5), (2.0, 0.0)))
    assert cal.score(-5.0) == 1.0       # clamp low
    assert cal.score(0.5) == pytest.approx(0.75)
    assert cal.score(1.5) == pytest.approx(0.25)
    assert cal.score(99.0) == 0.0       # clamp high
    assert cal.grade(0.0) == "A"
    assert cal.grade(2.0) == "F"


def test_calibration_rejects_bad_anchors():
    with pytest.raises(ConfigurationError):
        Calibration(((0.0, 1.0),))                    # too few
    with pytest.raises(ConfigurationError):
        Calibration(((1.0, 1.0), (1.0, 0.5)))         # not increasing
    with pytest.raises(ConfigurationError):
        Calibration(((0.0, 1.5), (1.0, 0.0)))         # score out of range


def test_all_six_dimensions_calibrated():
    assert sorted(CALIBRATIONS) == [
        "cost_projection", "energy_per_gb", "lease_churn",
        "pue_efficiency", "stranded_memory", "zombie_conversion",
    ]


# -- inputs ----------------------------------------------------------------

def test_parse_series_roundtrip():
    assert parse_series('x_total{a="1",b="two"}') == (
        "x_total", {"a": "1", "b": "two"})
    assert parse_series("bare_gauge") == ("bare_gauge", {})


def test_inputs_series_filter_and_sum():
    inputs = AuditInputs(snapshot={
        'ops{op="a",user="u"}': 2.0,
        'ops{op="b",user="u"}': 3.0,
        'other': 7.0,
    })
    assert inputs.value("ops") == 5.0
    assert inputs.value("ops", op="a") == 2.0
    assert inputs.value("missing") == 0.0
    assert inputs.has_series("ops", op="b")
    assert not inputs.has_series("ops", op="z")


def test_empty_inputs_grade_nothing():
    report = run_audit(AuditInputs(snapshot={}))
    assert report.overall_grade == "-"
    assert all(not dim.available for dim in report.dimensions)
    assert report.recommendations == ()


# -- golden determinism (issue acceptance) ---------------------------------

def test_same_seed_three_runs_byte_identical():
    renders = [to_json(run_golden_audit(GOLDEN_SEEDS[0])) for _ in range(3)]
    assert renders[0] == renders[1] == renders[2]


def test_three_seeds_identical_grades():
    reports = {seed: run_golden_audit(seed) for seed in GOLDEN_SEEDS}
    first = reports[GOLDEN_SEEDS[0]]
    for seed in GOLDEN_SEEDS[1:]:
        assert reports[seed].grades == first.grades
        assert reports[seed].overall_grade == first.overall_grade


def test_golden_scores_all_six_dimensions():
    report = run_golden_audit(GOLDEN_SEEDS[0])
    assert len(report.dimensions) == 6
    assert all(dim.available for dim in report.dimensions)
    assert all(dim.grade in "ABCDF" for dim in report.dimensions)
    assert all(0.0 <= dim.score <= 1.0 for dim in report.dimensions)


def test_golden_has_three_quantified_recommendations():
    report = run_golden_audit(GOLDEN_SEEDS[0])
    quantified = [r for r in report.recommendations
                  if r.impact_j_per_hour > 0]
    assert len(quantified) >= 3
    impacts = [r.impact_j_per_hour for r in report.recommendations]
    assert impacts == sorted(impacts, reverse=True)  # ranked
    for rec in report.recommendations:
        assert rec.action and rec.rationale and rec.basis


def test_golden_matches_checked_in_baseline():
    assert BASELINE_PATH.exists(), \
        "run `python -m repro.obs audit --regen` and commit the baseline"
    baseline = json.loads(BASELINE_PATH.read_text())
    report = run_golden_audit(GOLDEN_SEEDS[0])
    assert report.grades == baseline["grades"]
    assert report.overall_grade == baseline["overall_grade"]
    for key, pinned in baseline["values"].items():
        dim = report.dimension(key)
        assert dim is not None and dim.available
        assert dim.value == pytest.approx(pinned, rel=baseline["tolerance"],
                                          abs=1e-6)


def test_self_check_passes():
    assert self_check() == []


def test_baseline_payload_shape():
    payload = baseline_payload(run_golden_audit(GOLDEN_SEEDS[0]))
    assert payload["scenario"] == "golden-fig10"
    assert set(payload["values"]) == set(payload["grades"])
    assert payload["recommendations"] >= 3


# -- the regression gate: a crippled fleet must fail loudly ---------------

def test_disabled_zombie_conversion_fails_the_gate(monkeypatch):
    """Zombies replaced by Oasis-style memory servers: the conversion
    dimension collapses and the baseline comparison must fail."""

    def crippled(slot, n_servers):
        plan = plan_zombiestack(slot, n_servers)
        return SlotPlan(active=plan.active, utilization=plan.utilization,
                        zombies=0.0, memory_servers=plan.zombies,
                        suspended=plan.suspended)

    monkeypatch.setitem(energy_sim.POLICIES, "ZombieStack", crippled)
    report = run_golden_audit(GOLDEN_SEEDS[0])
    conversion = report.dimension("zombie_conversion")
    assert conversion.value == 0.0
    assert conversion.grade == "F"
    baseline = json.loads(BASELINE_PATH.read_text())
    assert report.grades != baseline["grades"]
    # The gate surfaces it: the audited fleet now recommends growing the
    # zombie pool to absorb the unserved cold demand.
    assert any(rec.dimension == "zombie_conversion"
               for rec in report.recommendations)


# -- rendering -------------------------------------------------------------

def test_text_report_contents():
    text = to_text(run_golden_audit(GOLDEN_SEEDS[0]))
    assert "ZomAudit fleet report" in text
    assert "overall grade:" in text
    for title in ("Zombie conversion rate", "Stranded-memory fraction",
                  "zPUE efficiency ratio", "Energy per served GiB-hour",
                  "Lease-churn overhead", "Cost projection"):
        assert title in text
    assert "ranked recommendations" in text
    assert "J/hour" in text


def test_json_report_is_sorted_and_stable():
    report = run_golden_audit(GOLDEN_SEEDS[0])
    text = to_json(report)
    data = json.loads(text)
    assert text.endswith("\n")
    assert json.dumps(data, indent=2, sort_keys=True) + "\n" == text
    assert {d["key"] for d in data["dimensions"]} == set(report.grades)
    assert data["audit"]["overall_grade"] == report.overall_grade
    ranks = [r["rank"] for r in data["recommendations"]]
    assert ranks == list(range(1, len(ranks) + 1))


def test_prometheus_report_validates():
    text = to_prometheus(run_golden_audit(GOLDEN_SEEDS[0]))
    assert validate_prometheus_text(text) == []
    assert "audit_dimension_grade_points" in text
    assert "audit_overall_points" in text


def test_render_rejects_unknown_format():
    report = run_golden_audit(GOLDEN_SEEDS[0])
    with pytest.raises(ValueError):
        render(report, "yaml")


def test_report_dict_floats_rounded():
    def floats(value):
        if isinstance(value, float):
            yield value
        elif isinstance(value, dict):
            for child in value.values():
                yield from floats(child)
        elif isinstance(value, list):
            for child in value:
                yield from floats(child)

    data = report_dict(run_golden_audit(GOLDEN_SEEDS[0]))
    for value in floats(data):
        assert value == round(value, 6)


# -- CLI -------------------------------------------------------------------

def test_cli_audit_text(capsys):
    assert obs_main(["audit"]) == 0
    assert "ZomAudit fleet report" in capsys.readouterr().out


def test_cli_audit_json_out(tmp_path, capsys):
    out = tmp_path / "audit.json"
    assert obs_main(["audit", "--format", "json", "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    assert data["audit"]["policy"] == "ZombieStack"
    assert len(data["dimensions"]) == 6


def test_cli_audit_prom(capsys):
    assert obs_main(["audit", "--format", "prom"]) == 0
    assert validate_prometheus_text(capsys.readouterr().out) == []


def test_cli_audit_seed_changes_values_not_grades(capsys):
    assert obs_main(["audit", "--seed", str(GOLDEN_SEEDS[1]),
                     "--format", "json", ]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["meta"]["seed"] == GOLDEN_SEEDS[1]


def test_cli_audit_self_check(capsys):
    assert obs_main(["audit", "--self-check"]) == 0
    assert "audit self-check: ok" in capsys.readouterr().out


def test_cli_audit_regen_roundtrip(tmp_path, monkeypatch, capsys):
    target = tmp_path / "BENCH_fig10_dc_energy.json"
    monkeypatch.setattr("repro.obs.audit.golden.BASELINE_PATH", target)
    assert obs_main(["audit", "--regen"]) == 0
    assert json.loads(target.read_text()) == \
        json.loads(BASELINE_PATH.read_text())
