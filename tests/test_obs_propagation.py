"""Trace propagation through the RPC layer: retries, breaker, failover.

These are the satellite-3 contract tests: one logical operation must stay
one connected span tree no matter what the fault layer does to it —
dropped responses and retries, a circuit breaker failing the call fast,
or a primary→secondary failover mid-operation.
"""

import pytest

from repro.errors import CircuitOpenError, RpcTimeoutError
from repro.obs import Telemetry
from repro.obs.selfcheck import (connected_subtree,
                                 run_failover_retry_scenario)
from repro.obs.tracing import span_forest_errors
from repro.rdma.fabric import Fabric
from repro.rdma.rpc import RetryPolicy, RpcClient, RpcServer
from repro.sim.rng import DeterministicRng


def _traced_channel(policy=None, verb="GS_ping", handler=None):
    """A minimal instrumented client/server pair serving one verb."""
    tel = Telemetry(enabled=True)
    fabric = Fabric(telemetry=tel)
    a = fabric.add_node("client")
    b = fabric.add_node("server")
    server = RpcServer(b)
    server.register(verb, server.traced(verb, handler or (lambda: "ok")))
    client = RpcClient(a, server, retry_policy=policy)
    return tel, fabric, server, client


class TestRetryPropagation:
    def test_retried_call_stays_one_connected_tree(self):
        drops = {"left": 2}

        def flaky():
            if drops["left"] > 0:
                drops["left"] -= 1
                raise RpcTimeoutError("response lost")
            return "ok"

        policy = RetryPolicy(max_attempts=4, rng=DeterministicRng(7))
        tel, _, _, client = _traced_channel(policy, handler=flaky)
        assert client.call("GS_ping") == "ok"

        (call,) = tel.tracer.finished("call.GS_ping")
        trace = tel.tracer.trace(call.trace_id)
        assert span_forest_errors(trace) == []
        attempts = [s for s in trace if s.name == "attempt.GS_ping"]
        serves = [s for s in trace if s.name == "serve.GS_ping"]
        assert len(attempts) == 3
        assert len(serves) == 3
        # Every attempt hangs off the logical call, every server-side
        # span off the specific attempt whose request reached it.
        assert {s.parent_id for s in attempts} == {call.span_id}
        assert ({s.parent_id for s in serves}
                == {s.span_id for s in attempts})
        assert call.tags["retries"] == 2
        assert tel.registry.value("rpc_retries_total", verb="GS_ping") == 2

    def test_failed_serve_spans_carry_error_status(self):
        def always_drop():
            raise RpcTimeoutError("response lost")

        policy = RetryPolicy(max_attempts=2, rng=DeterministicRng(7))
        tel, _, _, client = _traced_channel(policy, handler=always_drop)
        with pytest.raises(RpcTimeoutError):
            client.call("GS_ping")
        serves = tel.tracer.finished("serve.GS_ping")
        assert len(serves) == 2
        assert all(s.status == "error" for s in serves)
        (call,) = tel.tracer.finished("call.GS_ping")
        assert call.status == "error"
        assert tel.registry.value("rpc_failures_total", verb="GS_ping",
                                  outcome="timeout") == 1


class TestBreakerPropagation:
    def test_breaker_open_is_a_traced_fast_failure(self):
        policy = RetryPolicy.no_retry(failure_threshold=2, cooldown_s=30.0)
        tel, fabric, _, client = _traced_channel(policy)
        fabric.partition("server")
        for _ in range(2):
            with pytest.raises(RpcTimeoutError):
                client.call("GS_ping")
        with pytest.raises(CircuitOpenError):
            client.call("GS_ping")

        assert tel.registry.value("rpc_failures_total", verb="GS_ping",
                                  outcome="breaker_open") == 1
        fast = tel.tracer.finished("call.GS_ping")[-1]
        assert fast.status == "error"
        assert fast.tags["error"] == "CircuitOpenError"
        # Fail-fast means no attempt ever left the client: the call span
        # is a childless root, and the forest is still structurally sound.
        trace = tel.tracer.trace(fast.trace_id)
        assert [s.name for s in trace] == ["call.GS_ping"]
        assert span_forest_errors(tel.tracer.finished()) == []


class TestFailoverPropagation:
    def test_goto_zombie_survives_retries_and_failover_as_one_tree(self):
        tel, trace_id = run_failover_retry_scenario()
        trace = tel.tracer.trace(trace_id)
        assert span_forest_errors(trace) == []

        subtree = connected_subtree(trace, "call.GS_goto_zombie")
        names = [s.name for s in subtree]
        assert names.count("attempt.GS_goto_zombie") == 3
        assert names.count("serve.GS_goto_zombie") == 3
        serves = [s for s in subtree if s.name == "serve.GS_goto_zombie"]
        assert sum(1 for s in serves if s.status == "error") == 2
        # The surviving attempt was served by the promoted secondary.
        assert any(s.status == "ok" for s in serves)
        assert tel.registry.value("rpc_retries_total",
                                  verb="GS_goto_zombie") == 2
        assert tel.registry.value("failovers_total") == 1

    def test_fenced_epoch_probe_leaves_a_tagged_span(self):
        tel, _ = run_failover_retry_scenario()
        fenced = [s for s in tel.tracer.finished()
                  if s.tags.get("fenced")]
        assert fenced, "stale-epoch probe left no fenced-tagged span"
        assert any(s.name.startswith("serve.") for s in fenced)
        assert tel.registry.value("rpc_failures_total", verb="heartbeat",
                                  outcome="fenced") >= 1


class TestDisabledTelemetry:
    def test_disabled_hub_records_nothing_on_the_rpc_path(self):
        policy = RetryPolicy(rng=DeterministicRng(7))
        fabric = Fabric()  # default: disabled telemetry
        a = fabric.add_node("client")
        b = fabric.add_node("server")
        server = RpcServer(b)
        server.register("GS_ping", server.traced("GS_ping", lambda: "ok"))
        client = RpcClient(a, server, retry_policy=policy)
        assert client.call("GS_ping") == "ok"
        tel = fabric.telemetry
        assert not tel.enabled
        assert tel.tracer.finished() == []
        assert tel.registry.families() == []
