"""End-to-end data integrity: page contents through demote/fill cycles.

With ``content_mode`` the hypervisor ships each evicted page's real bytes
through the registered memory regions and verifies every remote fill —
catching any corruption in the store, the MR sparse backing, re-homing or
migration paths.
"""

import pytest

from repro.core.rack import Rack
from repro.errors import HypervisorError
from repro.hypervisor.vm import VmSpec
from repro.units import MiB


@pytest.fixture
def rack():
    r = Rack(["user", "dst", "zombie"], memory_bytes=128 * MiB,
             buff_size=8 * MiB)
    r.make_zombie("zombie")
    return r


def _content_vm(rack, host="user", pages_mib=16):
    hv = rack.server(host).hypervisor
    hv.content_mode = True
    vm = rack.create_vm(host, VmSpec("cvm", pages_mib * MiB),
                        local_fraction=0.5)
    store = hv.store_for("cvm")
    store.transfer_content = True  # real byte movement
    return hv, vm


def _pattern(ppn):
    return (b"page-%06d-" % ppn) * 8


class TestContentRoundTrip:
    def test_every_page_survives_thrashing(self, rack):
        hv, vm = _content_vm(rack)
        total = vm.spec.total_pages
        for ppn in range(total):
            hv.write_page(vm, ppn, _pattern(ppn))
        # Thrash: every refill verifies content against expectations.
        for rep in range(2):
            for ppn in range(total):
                assert hv.read_page(vm, ppn)[:12] == _pattern(ppn)[:12]
        assert hv.stats("cvm").remote_fills > 0

    def test_overwrites_stick(self, rack):
        hv, vm = _content_vm(rack)
        hv.write_page(vm, 0, b"first")
        # Push page 0 out by touching everything else.
        for ppn in range(1, vm.spec.total_pages):
            hv.write_page(vm, ppn, _pattern(ppn))
        hv.write_page(vm, 0, b"second")
        for ppn in range(1, vm.spec.total_pages):
            hv.read_page(vm, ppn)
        assert hv.read_page(vm, 0) == b"second"

    def test_content_survives_zombie_reclaim(self, rack):
        hv, vm = _content_vm(rack)
        for ppn in range(vm.spec.total_pages):
            hv.write_page(vm, ppn, _pattern(ppn))
        rack.wake("zombie", reclaim_bytes=128 * MiB)
        for ppn in range(vm.spec.total_pages):
            assert hv.read_page(vm, ppn)[:12] == _pattern(ppn)[:12]

    def test_content_survives_migration(self, rack):
        hv, vm = _content_vm(rack)
        for ppn in range(vm.spec.total_pages):
            hv.write_page(vm, ppn, _pattern(ppn))
        rack.server("dst").hypervisor.content_mode = True
        rack.migrate_vm("cvm", "user", "dst")
        dst_hv = rack.server("dst").hypervisor
        for ppn in range(vm.spec.total_pages):
            assert dst_hv.read_page(vm, ppn)[:12] == _pattern(ppn)[:12]

    def test_content_mode_off_rejects_api(self, rack):
        hv = rack.server("user").hypervisor
        vm = rack.create_vm("user", VmSpec("plain", 8 * MiB),
                            local_fraction=1.0)
        with pytest.raises(HypervisorError):
            hv.write_page(vm, 0, b"x")
        with pytest.raises(HypervisorError):
            hv.read_page(vm, 0)

    def test_corruption_detected(self, rack):
        """Tampering with the remote MR is caught on the next fill."""
        hv, vm = _content_vm(rack)
        for ppn in range(vm.spec.total_pages):
            hv.write_page(vm, ppn, _pattern(ppn))
        store = hv.store_for("cvm")
        # Corrupt one demoted page directly in the serving MR *and* its
        # local mirror, simulating silent corruption.
        victim = next(p for p in range(vm.spec.total_pages)
                      if not vm.table.entry(p).present)
        key = vm.table.entry(victim).remote_slot
        buffer_id, slot = store._locations[key]
        lease_state = store._leases[buffer_id]
        node = rack.server("zombie").node
        mr = node.pd.lookup(lease_state.lease.rkey)
        mr._chunks.clear()  # wipe the backing: reads now return zeros
        with pytest.raises(HypervisorError):
            hv.read_page(vm, victim)
