"""Edge-path tests for public API that the bigger suites exercise only
indirectly: direct device-path validation, fabric node management, PD
bookkeeping, manager carving limits, secondary wiring variants."""

import pytest

from repro.acpi.platform import build_platform
from repro.acpi.states import SleepState
from repro.core.secondary import SecondaryController
from repro.core.controller import GlobalMemoryController
from repro.core.manager import RemoteMemoryManager
from repro.core.protocol import BufferDescriptor, BufferKind
from repro.errors import (ControllerError, DeviceStateError,
                          MemoryRegionError, QueuePairError, RdmaError,
                          VmStateError)
from repro.hypervisor.vm import Vm, VmSpec, VmState
from repro.memory.frames import FrameAllocator
from repro.memory.replacement import FifoPolicy
from repro.rdma.fabric import Fabric
from repro.sim.engine import Engine
from repro.units import GiB, MiB, PAGE_SIZE


class TestServeRemoteAccessPath:
    def test_end_to_end_validation_per_state(self):
        platform = build_platform("p", memory_bytes=1 * GiB)
        platform.serve_remote_access()  # S0: fine
        platform.go_zombie()
        platform.serve_remote_access()  # Sz: fine
        platform.wake()
        platform.suspend(SleepState.S3)
        with pytest.raises(DeviceStateError):
            platform.serve_remote_access()

    def test_no_nic_board(self):
        platform = build_platform("p", with_infiniband=False)
        with pytest.raises(DeviceStateError):
            platform.serve_remote_access()
        assert not platform.memory_remotely_accessible()

    def test_no_nic_board_cannot_go_remote_even_in_sz(self):
        platform = build_platform("p", with_infiniband=False)
        platform.go_zombie()  # Sz itself still works (domains are split)
        assert not platform.memory_remotely_accessible()


class TestFabricNodeManagement:
    def test_remove_node(self):
        fabric = Fabric()
        fabric.add_node("x")
        fabric.remove_node("x")
        with pytest.raises(RdmaError):
            fabric.node("x")
        with pytest.raises(RdmaError):
            fabric.remove_node("x")

    def test_connect_to_unknown_remote_rejected(self):
        fabric = Fabric()
        node = fabric.add_node("a")
        with pytest.raises(RdmaError):
            node.connect_qp("missing")

    def test_deregistered_mr_unusable(self):
        fabric = Fabric()
        a = fabric.add_node("a")
        b = fabric.add_node("b")
        mr = b.register_mr(4096)
        qp = a.connect_qp("b")
        b.deregister_mr(mr.rkey)
        with pytest.raises(MemoryRegionError):
            a.rdma_read(qp, mr.rkey, 0, 1)
        with pytest.raises(MemoryRegionError):
            b.deregister_mr(mr.rkey)

    def test_destroy_unknown_qp_rejected(self):
        fabric = Fabric()
        node = fabric.add_node("a")
        with pytest.raises(QueuePairError):
            node.pd.destroy_qp(999999)


class TestManagerCarving:
    def _manager(self, frames=1024):
        fabric = Fabric()
        node = fabric.add_node("m")
        return RemoteMemoryManager("m", node, FrameAllocator(frames),
                                   buff_size=1 * MiB)

    def test_max_bytes_caps_carving(self):
        manager = self._manager(frames=1024)  # 4 MiB of frames
        descriptors = manager.carve_buffers(max_bytes=2 * MiB)
        assert len(descriptors) == 2
        assert manager.allocator.free_frames == 512

    def test_carving_stops_below_one_buffer(self):
        manager = self._manager(frames=100)  # < 1 MiB worth
        assert manager.carve_buffers() == []

    def test_lent_buffer_ids_sorted(self):
        manager = self._manager()
        manager.carve_buffers(max_bytes=3 * MiB)
        ids = manager.lent_buffer_ids
        assert ids == sorted(ids) and len(ids) == 3

    def test_reclaim_zero_is_noop(self):
        manager = self._manager()
        assert manager.reclaim(0) == 0


class TestSecondaryWiring:
    def test_in_process_mirror_fn(self):
        """The direct (non-RPC) mirror closure for embedded setups."""
        fabric = Fabric()
        engine = Engine()
        controller = GlobalMemoryController(fabric.add_node("ctr"),
                                            buff_size=MiB)
        secondary = SecondaryController(fabric.add_node("sec"), engine)
        controller.mirror = secondary.mirror_fn()
        controller.gs_goto_zombie("z", [BufferDescriptor(
            buffer_id=1, host="z", offset=0, size_bytes=MiB,
            kind=BufferKind.ZOMBIE, rkey=1)])
        assert len(secondary.db) == 1
        assert secondary.zombie_hosts == {"z"}

    def test_stop_watching_halts_heartbeats(self):
        fabric = Fabric()
        engine = Engine()
        controller = GlobalMemoryController(fabric.add_node("ctr"))
        secondary = SecondaryController(fabric.add_node("sec"), engine)
        from repro.rdma.rpc import RpcClient
        secondary.watch(RpcClient(secondary.node, controller.rpc))
        engine.run(until=2.5)
        assert secondary.heartbeats_ok == 2
        secondary.stop_watching()
        engine.run(until=10.0)
        assert secondary.heartbeats_ok == 2

    def test_transfer_of_foreign_buffer_rejected(self):
        fabric = Fabric()
        controller = GlobalMemoryController(fabric.add_node("ctr"),
                                            buff_size=MiB)
        controller.gs_goto_zombie("z", [BufferDescriptor(
            buffer_id=1, host="z", offset=0, size_bytes=MiB,
            kind=BufferKind.ZOMBIE, rkey=1)])
        controller.gs_alloc_ext("alice", MiB)
        with pytest.raises(ControllerError):
            controller.gs_transfer("bob", "carol", [1])


class TestVmGuards:
    def test_require_running(self):
        vm = Vm(VmSpec("v", 4 * PAGE_SIZE), 4 * PAGE_SIZE, FifoPolicy())
        with pytest.raises(VmStateError):
            vm.require_running()
        vm.transition(VmState.RUNNING)
        vm.require_running()

    def test_local_fraction(self):
        vm = Vm(VmSpec("v", 8 * PAGE_SIZE), 4 * PAGE_SIZE, FifoPolicy())
        assert vm.local_fraction == pytest.approx(0.5)
