"""Firmware sequencing and the OSPM (Fig. 6) execution path."""

import pytest

from repro.acpi.devices import DeviceState, InfinibandCard, MemoryBankDevice
from repro.acpi.platform import build_platform
from repro.acpi.power import (CPU_DOMAIN, MEMORY_DOMAIN, NIC_DOMAIN,
                              STORAGE_DOMAIN)
from repro.acpi.states import SleepState
from repro.errors import PowerStateError
from repro.units import GiB


@pytest.fixture
def server():
    return build_platform("srv", memory_bytes=1 * GiB)


class TestBoot:
    def test_split_board_advertises_sz(self, server):
        assert server.firmware.supports_sz

    def test_legacy_board_does_not(self):
        legacy = build_platform("legacy", split_power_domains=False)
        assert not legacy.firmware.supports_sz


class TestSzEntry:
    def test_cpu_domain_cut_memory_and_nic_alive(self, server):
        server.go_zombie()
        report = server.plane.report()
        assert not report[CPU_DOMAIN]
        assert report[MEMORY_DOMAIN]
        assert report[NIC_DOMAIN]
        assert not report[STORAGE_DOMAIN]

    def test_memory_stays_active_idle_not_self_refresh(self, server):
        server.go_zombie()
        for bank in server.memory_banks:
            assert bank.serves_accesses

    def test_nic_stays_in_d0(self, server):
        server.go_zombie()
        assert server.infiniband.state is DeviceState.D0

    def test_other_devices_suspended(self, server):
        server.go_zombie()
        for device in server.devices:
            if isinstance(device, (MemoryBankDevice, InfinibandCard)):
                continue
            if device.domain == NIC_DOMAIN:
                continue  # PCIe path stays up
            assert device.state is not DeviceState.D0

    def test_sz_on_legacy_board_refused(self):
        legacy = build_platform("legacy", split_power_domains=False)
        with pytest.raises(PowerStateError):
            legacy.go_zombie()


class TestS3Entry:
    def test_memory_retained_in_self_refresh(self, server):
        server.suspend(SleepState.S3)
        for bank in server.memory_banks:
            assert bank.state.operational
            assert not bank.serves_accesses

    def test_nic_drops_to_wol(self, server):
        server.suspend(SleepState.S3)
        assert server.infiniband.state is DeviceState.D3_HOT
        assert server.infiniband.wake_on_lan_armed

    def test_s3_works_on_legacy_board(self):
        legacy = build_platform("legacy", split_power_domains=False)
        legacy.suspend(SleepState.S3)
        assert legacy.state is SleepState.S3
        assert all(b.state.operational for b in legacy.memory_banks)


class TestDeepStates:
    def test_s5_kills_memory_power(self, server):
        server.suspend(SleepState.S5)
        assert all(b.state is DeviceState.D3_COLD
                   for b in server.memory_banks)

    def test_s4_keeps_wol_aux_power(self, server):
        server.suspend(SleepState.S4)
        assert server.infiniband.state is DeviceState.D3_HOT

    def test_s5_drops_wol_entirely(self, server):
        server.suspend(SleepState.S5)
        assert server.infiniband.state is DeviceState.D3_COLD


class TestOspmCallPath:
    FIG6_CHAIN = [
        "pm_suspend", "enter_state", "suspend_prepare",
        "suspend_devices_and_enter", "suspend_enter", "acpi_suspend_enter",
        "x86_acpi_suspend_lowlevel", "do_suspend_lowlevel",
        "x86_acpi_enter_sleep_state", "acpi_hw_legacy_sleep",
        "acpi_os_prepare_sleep", "tboot_sleep",
    ]

    def test_zom_keyword_walks_the_fig6_chain(self, server):
        server.ospm.write_sysfs_power_state("zom")
        trace = server.ospm.call_trace
        assert trace[0] == "sysfs:zom"
        positions = [trace.index(fn) for fn in self.FIG6_CHAIN]
        assert positions == sorted(positions), "chain order broken"

    def test_sz_keeps_nic_devices_out_of_pm_suspend(self, server):
        server.ospm.write_sysfs_power_state("zom")
        trace = server.ospm.call_trace
        assert any(entry.startswith("pm_keep:mlx") for entry in trace)
        assert not any(entry == "pm_suspend_device:mlx0" for entry in trace)

    def test_s3_suspends_every_device(self, server):
        server.ospm.write_sysfs_power_state("mem")
        trace = server.ospm.call_trace
        assert not any(entry.startswith("pm_keep:") for entry in trace)

    def test_unknown_keyword_rejected(self, server):
        with pytest.raises(PowerStateError):
            server.ospm.write_sysfs_power_state("hibernate-to-cloud")

    def test_double_suspend_rejected(self, server):
        server.go_zombie()
        with pytest.raises(PowerStateError):
            server.suspend(SleepState.S3)

    def test_pre_sleep_hook_runs_before_registers(self, server):
        order = []
        server.ospm.pre_sleep_hook = lambda target: order.append("hook")
        original = server.registers.write_sleep
        server.registers.write_sleep = lambda st: (order.append("regs"),
                                                   original(st))[1]
        server.go_zombie()
        assert order == ["hook", "regs"]


class TestWake:
    def test_wake_restores_s0(self, server):
        server.go_zombie()
        latency = server.wake()
        assert server.state is SleepState.S0
        assert latency == SleepState.SZ.wake_latency_s
        assert all(d.state is DeviceState.D0 for d in server.devices)

    def test_wake_from_s0_is_free(self, server):
        assert server.wake() == 0.0

    def test_wake_restores_active_idle_memory(self, server):
        server.suspend(SleepState.S3)
        server.wake()
        assert all(b.serves_accesses for b in server.memory_banks)


class TestPowerDraw:
    def test_ordering_s0_sz_s3_s5(self, server):
        draw_s0 = server.power_draw()
        server.go_zombie()
        draw_sz = server.power_draw()
        server.wake()
        server.suspend(SleepState.S3)
        draw_s3 = server.power_draw()
        server.wake()
        server.suspend(SleepState.S5)
        draw_s5 = server.power_draw()
        assert draw_s0 > draw_sz > draw_s3 > draw_s5

    def test_remote_ok_flag_tracks_transitions(self, server):
        assert server.remote_ok
        server.suspend(SleepState.S3)
        assert not server.remote_ok
        server.wake()
        server.go_zombie()
        assert server.remote_ok
