"""Rack-level VM migration with remote-lease ownership transfer."""

import pytest

from repro.core.rack import Rack
from repro.errors import ConfigurationError
from repro.hypervisor.vm import VmSpec, VmState
from repro.units import MiB


@pytest.fixture
def migration_rack():
    rack = Rack(["src", "dst", "zombie"], memory_bytes=256 * MiB,
                buff_size=8 * MiB)
    rack.make_zombie("zombie")
    return rack


def _paged_vm(rack, name="vm", host="src", mem=64 * MiB):
    vm = rack.create_vm(host, VmSpec(name, mem), local_fraction=0.5)
    hv = rack.server(host).hypervisor
    for ppn in range(vm.spec.total_pages):
        hv.access(vm, ppn)
    return vm


class TestMigrateVm:
    def test_vm_moves_with_its_paging_state(self, migration_rack):
        rack = migration_rack
        vm = _paged_vm(rack)
        local = vm.table.resident_pages
        remote = vm.table.remote_pages
        result = rack.migrate_vm("vm", "src", "dst")

        assert "vm" not in rack.server("src").hypervisor.vms
        assert "vm" in rack.server("dst").hypervisor.vms
        assert vm.state is VmState.RUNNING
        assert vm.table.resident_pages == local
        assert vm.table.remote_pages == remote
        assert result.pages_transferred == local
        assert result.remote_pages_kept == remote

    def test_remote_memory_does_not_move(self, migration_rack):
        rack = migration_rack
        _paged_vm(rack)
        bytes_before = rack.fabric.stats.bytes_written
        rack.migrate_vm("vm", "src", "dst")
        # ownership transfer moves no page content over RDMA
        assert rack.fabric.stats.bytes_written == bytes_before

    def test_controller_ownership_repointed(self, migration_rack):
        rack = migration_rack
        _paged_vm(rack)
        rack.migrate_vm("vm", "src", "dst")
        users = {b.user for b in rack.controller.db.all_buffers()
                 if b.allocated}
        assert users == {"dst"}

    def test_vm_keeps_paging_after_migration(self, migration_rack):
        rack = migration_rack
        vm = _paged_vm(rack)
        demoted = [p for p in range(vm.spec.total_pages)
                   if not vm.table.entry(p).present]
        rack.migrate_vm("vm", "src", "dst")
        dst_hv = rack.server("dst").hypervisor
        # remote fills still work through the rebound queue pairs
        cost = dst_hv.access(vm, demoted[0])
        assert cost > 0
        assert dst_hv.stats("vm").remote_fills >= 1

    def test_source_frames_freed_destination_charged(self, migration_rack):
        rack = migration_rack
        src_free0 = rack.server("src").allocator.free_frames
        dst_free0 = rack.server("dst").allocator.free_frames
        vm = _paged_vm(rack)
        rack.migrate_vm("vm", "src", "dst")
        assert rack.server("src").allocator.free_frames == src_free0
        assert (dst_free0 - rack.server("dst").allocator.free_frames
                == vm.table.resident_pages)

    def test_destroy_after_migration_releases_buffers(self, migration_rack):
        rack = migration_rack
        _paged_vm(rack)
        rack.migrate_vm("vm", "src", "dst")
        rack.destroy_vm("dst", "vm")
        allocated = [b for b in rack.controller.db.all_buffers()
                     if b.allocated]
        assert allocated == []

    def test_unknown_vm_rejected(self, migration_rack):
        with pytest.raises(ConfigurationError):
            migration_rack.migrate_vm("ghost", "src", "dst")

    def test_migrate_back_and_forth(self, migration_rack):
        rack = migration_rack
        vm = _paged_vm(rack)
        rack.migrate_vm("vm", "src", "dst")
        rack.migrate_vm("vm", "dst", "src")
        assert "vm" in rack.server("src").hypervisor.vms
        hv = rack.server("src").hypervisor
        for ppn in range(vm.spec.total_pages):
            hv.access(vm, ppn)  # fully functional back home
