"""Units and conversion helpers."""

import pytest

from repro import units


class TestSizes:
    def test_binary_prefixes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024 ** 2
        assert units.GiB == 1024 ** 3
        assert units.TiB == 1024 ** 4

    def test_page_size_is_4k(self):
        assert units.PAGE_SIZE == 4096

    def test_default_buff_size_is_page_multiple(self):
        assert units.DEFAULT_BUFF_SIZE % units.PAGE_SIZE == 0


class TestPages:
    def test_exact_multiple(self):
        assert units.pages(8 * units.PAGE_SIZE) == 8

    def test_rounds_up(self):
        assert units.pages(units.PAGE_SIZE + 1) == 2

    def test_zero(self):
        assert units.pages(0) == 0

    def test_one_byte_needs_a_page(self):
        assert units.pages(1) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.pages(-1)


class TestBuffersFor:
    def test_exact(self):
        assert units.buffers_for(4 * units.MiB, buff_size=units.MiB) == 4

    def test_rounds_up(self):
        assert units.buffers_for(units.MiB + 1, buff_size=units.MiB) == 2

    def test_zero_size(self):
        assert units.buffers_for(0) == 0

    def test_invalid_buff_size(self):
        with pytest.raises(ValueError):
            units.buffers_for(1, buff_size=0)

    def test_negative_size(self):
        with pytest.raises(ValueError):
            units.buffers_for(-5)


class TestConversions:
    def test_bytes_to_gib(self):
        assert units.bytes_to_gib(2 * units.GiB) == 2.0
        assert units.bytes_to_gib(units.GiB // 2) == 0.5

    def test_pages_to_bytes(self):
        assert units.pages_to_bytes(0) == 0
        assert units.pages_to_bytes(3) == 3 * units.PAGE_SIZE

    def test_pages_roundtrip(self):
        assert units.pages(units.pages_to_bytes(17)) == 17

    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(units.KILOWATT_HOUR) == 1.0
        assert units.joules_to_kwh(0.0) == 0.0

    def test_watts_x_seconds(self):
        assert units.watts_x_seconds(100.0, 3600.0) == 360000.0
        assert units.watts_x_seconds(0.0, 5.0) == 0.0


class TestMetricUnit:
    def test_longest_suffix_wins(self):
        assert units.metric_unit("dc_energy_joules_total") == "joules"
        assert units.metric_unit("host_power_watts") == "watts"
        assert units.metric_unit("host_memory_bytes") == "bytes"
        assert units.metric_unit("req_latency_seconds") == "seconds"

    def test_unsuffixed_metric_has_no_unit(self):
        assert units.metric_unit("dc_mean_servers") is None
        assert units.metric_unit("events_total") is None

    def test_tables_agree_with_constants(self):
        for name, dim in units.UNIT_DIMENSIONS.items():
            assert hasattr(units, name), name
            assert dim in ("bytes", "seconds", "joules", "watts")


class TestFormatting:
    def test_fmt_size_gib(self):
        assert units.fmt_size(6 * units.GiB) == "6.0 GiB"

    def test_fmt_size_bytes(self):
        assert units.fmt_size(100) == "100 B"

    def test_fmt_time_ranges(self):
        assert "ms" in units.fmt_time(0.002)
        assert "us" in units.fmt_time(3e-6)
        assert "ns" in units.fmt_time(5e-9)
        assert units.fmt_time(2.0).endswith(" s")
