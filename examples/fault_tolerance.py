#!/usr/bin/env python3
"""Fault tolerance: what happens when pieces of the rack die.

Demonstrates the reliability story the paper builds in:

1. a zombie serving VM memory crashes → the pages come back from the
   asynchronous local-storage mirror (slow path), then get re-homed;
2. the global memory controller dies → the mirrored secondary notices the
   missed heartbeats and promotes itself, transparently to the data path;
3. Wake-on-LAN brings suspended servers back through the fabric.

Run:  python examples/fault_tolerance.py
"""

from repro import MiB, Rack, VmSpec
from repro.core.events import EventKind
from repro.units import fmt_time


def main() -> None:
    rack = Rack(["user", "z1", "z2"], memory_bytes=128 * MiB,
                buff_size=8 * MiB)
    rack.make_zombie("z1")
    rack.make_zombie("z2")
    vm = rack.create_vm("user", VmSpec("db", 48 * MiB), local_fraction=0.5)
    hv = rack.server("user").hypervisor
    for ppn in range(vm.spec.total_pages):
        hv.access(vm, ppn, write=True)
    store = hv.store_for("db")
    hosts = sorted({lease.host for lease in store.leases()})
    print(f"VM 'db' paged out to zombies {hosts} "
          f"(striping bounds the blast radius)")

    print("\n--- failure 1: zombie z1 drops off the fabric ---")
    rack.fabric.partition("z1")
    dead = [lease.buffer_id for lease in store.leases()
            if lease.host == "z1"]
    for buffer_id in dead:
        fallbacks = store.remove_lease(buffer_id)
        print(f"  lease {buffer_id} revoked: pages re-homed "
              f"({fallbacks} to the local mirror)")
    demoted = [p for p in range(vm.spec.total_pages)
               if not vm.table.entry(p).present]
    t = sum(hv.access(vm, p) for p in demoted[:32])
    print(f"  first 32 refaults served in {fmt_time(t)} "
          f"({store.local_fallback_loads} from the local mirror)")

    print("\n--- failure 2: the global memory controller crashes ---")
    rack.kill_controller()
    rack.engine.run(until=10.0)
    promoted = rack.secondary.promoted is not None
    print(f"  secondary promoted after missed heartbeats: {promoted}")
    rack.destroy_vm("user", "db")
    print(f"  control plane alive: VM destroyed, "
          f"pool={rack.pool_summary()['free_bytes'] // MiB} MiB free")

    print("\n--- recovery: Wake-on-LAN through the fabric ---")
    rack.fabric.heal("z1")
    latency = rack.fabric.wake_on_lan("z1")
    print(f"  z1 woken by magic packet in {latency:.1f} s "
          f"(state {rack.server('z1').state})")

    print("\naudit trail (last events):")
    for event in list(rack.events)[-5:]:
        print(f"  {event}")


if __name__ == "__main__":
    main()
