#!/usr/bin/env python3
"""Deep dive into the Sz state: the ACPI plumbing the paper adds.

Walks the Fig. 6 kernel path (``echo zom > /sys/power/state``), shows which
power domains and devices stay alive, contrasts Sz with S3 on the RDMA data
path, and demonstrates the RPC asymmetry (one-sided verbs work against a
zombie, RPC does not).

Run:  python examples/sz_state_deep_dive.py
"""

from repro import GiB, SleepState, build_platform
from repro.errors import RdmaError, RpcTimeoutError
from repro.rdma import Fabric, RpcClient, RpcServer


def show_platform(platform) -> None:
    print(f"  state: {platform.state}, draw: {platform.power_draw():.1f} W")
    for name, on in sorted(platform.plane.report().items()):
        print(f"    domain {name:<10} {'ON' if on else 'off'}")


def main() -> None:
    platform = build_platform("node-7", memory_bytes=2 * GiB)
    print("Booted an Sz-capable platform (independent CPU/memory domains):")
    show_platform(platform)

    print("\n$ echo zom > /sys/power/state")
    platform.go_zombie()
    show_platform(platform)
    print("  kernel call trace (the paper's Fig. 6):")
    for entry in platform.ospm.call_trace[:16]:
        print(f"    {entry}")
    banks = platform.memory_banks
    print(f"  DRAM mode: {banks[0].mode.value} (Si0x-like, serves DMA)")

    print("\nRDMA against the zombie:")
    fabric = Fabric()
    peer = fabric.add_node("peer")
    node = fabric.add_node("node-7", platform=platform)
    mr = node.register_mr(1024 * 1024)
    qp = peer.connect_qp("node-7")
    peer.rdma_write(qp, mr.rkey, 0, b"written while CPU was dead")
    print(f"  one-sided READ: {peer.rdma_read(qp, mr.rkey, 0, 26)!r}")

    server = RpcServer(node)
    server.register("ping", lambda: "pong")
    client = RpcClient(peer, server, timeout_s=0.01)
    try:
        client.call("ping")
    except RpcTimeoutError as exc:
        print(f"  RPC (needs the CPU): {type(exc).__name__} — {exc}")

    print("\nNow S3 for contrast (memory in self-refresh):")
    platform.wake()
    platform.suspend(SleepState.S3)
    show_platform(platform)
    try:
        peer.rdma_read(qp, mr.rkey, 0, 8)
    except RdmaError as exc:
        print(f"  one-sided READ now fails: {exc}")

    print("\nA legacy board (shared CPU+memory supply) cannot do Sz:")
    legacy = build_platform("legacy", split_power_domains=False)
    try:
        legacy.go_zombie()
    except Exception as exc:
        print(f"  {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
