#!/usr/bin/env python3
"""Quickstart: a zombie server serving memory to a neighbour's VM.

Builds a three-server rack, pushes one server into the Sz (zombie) state —
its CPU dies, its memory joins the rack pool — then starts a VM on another
server with only half of its reserved memory local.  The VM transparently
pages its cold half to the zombie over one-sided RDMA.

Run:  python examples/quickstart.py
"""

from repro import MiB, Rack, VmSpec
from repro.units import fmt_size, fmt_time


def main(telemetry=None) -> Rack:
    """Run the demo; pass a ``repro.obs.Telemetry`` hub to trace it."""
    print("Building a rack of three 512 MiB servers...")
    rack = Rack(["user", "active", "spare"], memory_bytes=512 * MiB,
                buff_size=16 * MiB, telemetry=telemetry)
    print(f"  rack power: {rack.total_power_watts():.1f} W")

    print("\nSuspending 'spare' into the zombie (Sz) state...")
    rack.make_zombie("spare")
    spare = rack.server("spare")
    print(f"  state: {spare.state}  (CPU dead, memory alive)")
    print(f"  memory lent to the rack: {fmt_size(spare.manager.lent_bytes)}")
    print(f"  rack power now: {rack.total_power_watts():.1f} W")

    print("\nStarting a 128 MiB VM on 'user' with 50% local memory...")
    vm = rack.create_vm("user", VmSpec("demo-vm", 128 * MiB),
                        local_fraction=0.5)
    store = rack.server("user").hypervisor.store_for("demo-vm")
    hosts = {lease.host for lease in store.leases()}
    print(f"  remote memory served by: {sorted(hosts)}")

    print("\nTouching every page twice (forces paging to the zombie)...")
    hypervisor = rack.server("user").hypervisor
    elapsed = 0.0
    for _ in range(2):
        for ppn in range(vm.spec.total_pages):
            elapsed += hypervisor.access(vm, ppn)
    stats = hypervisor.stats("demo-vm")
    print(f"  simulated time: {fmt_time(elapsed)}")
    print(f"  page faults:    {stats.page_faults}")
    print(f"  demotions:      {stats.evictions}")
    print(f"  remote fills:   {stats.remote_fills}")
    print(f"  RDMA ops on the fabric: "
          f"{rack.fabric.stats.reads} reads, {rack.fabric.stats.writes} writes")

    print("\nWaking the zombie (it reclaims its memory)...")
    latency = rack.wake("spare", reclaim_bytes=512 * MiB)
    print(f"  wake latency: {latency:.1f} s (same as S3)")
    print(f"  the VM's pages were re-homed; it keeps running.")
    rack.destroy_vm("user", "demo-vm")
    print("\nDone.")
    return rack


if __name__ == "__main__":
    main()
