#!/usr/bin/env python3
"""Live migration: vanilla pre-copy vs. the ZombieStack protocol (Fig. 9).

Also demonstrates the object-level path: a VM is actually paged against a
rack, then migrated with its *real* local/remote split.

Run:  python examples/migration_comparison.py
"""

from repro import MiB, Rack, VmSpec
from repro.analysis.experiments import migration_comparison
from repro.hypervisor.migration import migrate_native, migrate_vm_zombiestack


def main() -> None:
    print("Model sweep (8 GiB VM, the Fig. 9 series):")
    print(f"  {'WSS':>6} {'native (s)':>12} {'zombiestack (s)':>16}")
    for row in migration_comparison(wss_ratios=(0.2, 0.4, 0.6, 0.8)):
        print(f"  {row['wss_ratio'] * 100:5.0f}% "
              f"{row['native_s']:12.2f} {row['zombiestack_s']:16.2f}")

    print("\nObject-level: migrate a real VM off a rack server...")
    rack = Rack(["src", "dst", "zombie"], memory_bytes=256 * MiB,
                buff_size=8 * MiB)
    rack.make_zombie("zombie")
    vm = rack.create_vm("src", VmSpec("web", 64 * MiB), local_fraction=0.5)
    hypervisor = rack.server("src").hypervisor
    # Touch a hot working set repeatedly, the rest once.
    for _ in range(3):
        for ppn in range(0, vm.spec.total_pages // 3):
            hypervisor.access(vm, ppn)
    for ppn in range(vm.spec.total_pages):
        hypervisor.access(vm, ppn)

    local = vm.table.resident_pages
    remote = vm.table.remote_pages
    print(f"  paging state: {local} local (hot) pages, "
          f"{remote} remote (cold) pages")

    store = hypervisor.store_for("web")
    zombie = migrate_vm_zombiestack(vm, remote_leases=len(store.lease_ids()))
    native = migrate_native(vm.spec.total_pages, local + remote)
    print(f"  native pre-copy:   {native.total_time_s:6.2f} s "
          f"({native.pages_transferred} pages moved)")
    print(f"  ZombieStack:       {zombie.total_time_s:6.2f} s "
          f"({zombie.pages_transferred} pages moved, "
          f"{zombie.remote_pages_kept} remote pages just re-pointed)")
    print(f"  speedup: {native.total_time_s / zombie.total_time_s:.1f}x")


if __name__ == "__main__":
    main()
