#!/usr/bin/env python3
"""A ZombieStack consolidation cycle, step by step.

Builds a small cluster model, shows vanilla Neat failing to consolidate a
memory-heavy VM, then the zombie-aware variant succeeding: the relaxed
30 %-of-WSS placement rule, Sz suspension, and the remote pool the zombies
contribute.

Run:  python examples/consolidation_cycle.py
"""

from repro.cloud import (ClusterModel, NeatConsolidator, NovaScheduler,
                         VmInstance)
from repro.cloud.model import HostPowerState


def build_cluster() -> ClusterModel:
    cluster = ClusterModel([f"host-{i}" for i in range(5)])
    layout = [
        ("host-0", "web", 0.45, 0.30, 0.45, 0.25),
        ("host-1", "cache", 0.10, 0.55, 0.06, 0.50),   # memory-heavy, idle-ish
        ("host-2", "batch", 0.12, 0.20, 0.08, 0.15),
        ("host-3", "logger", 0.05, 0.15, 0.03, 0.10),
    ]
    for host, name, cpu, mem, cpu_u, mem_u in layout:
        cluster.host(host).add_vm(VmInstance(
            name, cpu_request=cpu, mem_request=mem,
            cpu_usage=cpu_u, mem_usage=mem_u,
        ))
    return cluster


def show(cluster: ClusterModel, title: str) -> None:
    print(f"\n{title}")
    for name in sorted(cluster.hosts):
        host = cluster.hosts[name]
        vms = ", ".join(sorted(host.vms)) or "-"
        print(f"  {name}: {host.state.value:<3} cpu={host.cpu_booked:.2f} "
              f"mem={host.mem_booked_local:.2f} vms=[{vms}]")
    print(f"  remote pool free: {cluster.remote_pool_free:.2f} servers of RAM")


def main() -> None:
    print("=== vanilla OpenStack Neat (full-booking placement) ===")
    cluster = build_cluster()
    show(cluster, "before:")
    report = NeatConsolidator(cluster, zombie_aware=False).run_cycle()
    show(cluster, "after one cycle:")
    print(f"  migrations={report.migrations} "
          f"suspended={report.suspended_hosts} "
          f"failed={report.failed_migrations}")

    print("\n=== ZombieStack Neat (30% WSS local, Sz suspension) ===")
    cluster = build_cluster()
    report = NeatConsolidator(cluster, zombie_aware=True).run_cycle()
    show(cluster, "after one cycle:")
    print(f"  migrations={report.migrations} "
          f"suspended={report.suspended_hosts} "
          f"failed={report.failed_migrations}")
    zombies = [h.name for h in cluster.zombie_hosts()]
    print(f"  zombies serving memory: {zombies}")

    print("\nPlacing a memory-monster VM (0.8 of a server's RAM):")
    nova = NovaScheduler(cluster, local_threshold=0.5)
    monster = VmInstance("monster", cpu_request=0.2, mem_request=0.8,
                         cpu_usage=0.1, mem_usage=0.6)
    host = nova.place(monster)
    print(f"  placed on {host.name}: local fraction "
          f"{monster.local_mem_fraction:.0%}, remote part "
          f"{monster.remote_mem:.2f} served by the zombie pool")


if __name__ == "__main__":
    main()
