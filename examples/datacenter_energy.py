#!/usr/bin/env python3
"""Datacenter-scale energy comparison (the paper's Fig. 10 experiment).

Generates a synthetic Google-format cluster trace, derives the paper's
"modified" variant (memory demand = 2 x CPU demand), and compares the
energy saved by OpenStack Neat, Oasis and ZombieStack over a week, on both
measured machine profiles.

Run:  python examples/datacenter_energy.py [n_servers] [days]
"""

import sys

from repro.dc import simulate_energy, energy_saving_comparison
from repro.energy import DELL_PROFILE, HP_PROFILE
from repro.traces import TraceConfig, double_memory_demand, generate_trace


def main() -> None:
    n_servers = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    days = float(sys.argv[2]) if len(sys.argv) > 2 else 7.0

    print(f"Generating a {days:g}-day trace for {n_servers} servers...")
    config = TraceConfig(n_servers=n_servers, duration_days=days, seed=42)
    original = generate_trace(config)
    modified = double_memory_demand(original)
    print(f"  {len(original)} tasks, "
          f"{len({t.job_id for t in original})} jobs")

    for label, tasks in (("original", original), ("modified", modified)):
        print(f"\n--- {label} traces "
              f"(memory:cpu = {'trace default' if label == 'original' else '2.0'}) ---")
        savings = energy_saving_comparison(tasks, n_servers,
                                           (HP_PROFILE, DELL_PROFILE))
        for machine, row in savings.items():
            bars = "  ".join(f"{policy}: {value:5.1f}%"
                             for policy, value in row.items())
            print(f"  {machine:<5} {bars}")

    print("\nDetail for ZombieStack on the modified traces (Dell):")
    result = simulate_energy(modified, n_servers, DELL_PROFILE,
                             "ZombieStack")
    print(f"  energy:        {result.kwh:,.0f} kWh "
          f"(baseline {result.baseline_joules / 3.6e6:,.0f} kWh)")
    print(f"  saving:        {result.saving_pct:.1f}%")
    print(f"  mean active servers: {result.mean_active_servers:.0f}")
    print(f"  mean zombie servers: {result.mean_zombies:.0f}")


if __name__ == "__main__":
    main()
